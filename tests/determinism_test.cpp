// Determinism regression suite for the parallel execution layer: every
// parallel path must produce output bit-identical to the serial path
// (threads = 1), for any thread count, on every run. These tests pit
// threads=1 against threads=8 (far more workers than this grid has cells
// per thread) so out-of-order completion is actually exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/sweep.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"
#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

ContactTrace small_trace() {
  SyntheticTraceConfig c;
  c.node_count = 16;
  c.duration = days(8);
  c.target_total_contacts = 3000;
  c.seed = 3;
  return generate_trace(c);
}

SweepConfig base_sweep() {
  SweepConfig s;
  s.base.avg_lifetime = days(1);
  s.base.avg_data_size = megabits(40);
  s.base.ncl_count = 2;
  s.base.repetitions = 2;
  s.base.auto_horizon = false;
  s.base.sim.path_horizon = hours(6);
  s.base.sim.maintenance_interval = hours(12);
  return s;
}

TEST(Determinism, SweepCsvIsByteIdenticalAcrossThreadCounts) {
  const ContactTrace trace = small_trace();

  SweepConfig serial = base_sweep();
  serial.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  serial.lifetimes = {hours(12), days(1)};
  serial.ncl_counts = {1, 2};
  serial.threads = 1;

  SweepConfig threaded = serial;
  threaded.threads = 8;

  const std::string csv_serial = sweep_to_csv(run_sweep(trace, serial));
  const std::string csv_threaded = sweep_to_csv(run_sweep(trace, threaded));
  EXPECT_EQ(csv_serial, csv_threaded);
  // 2 schemes x 2 lifetimes x 2 K values + header.
  EXPECT_EQ(std::count(csv_serial.begin(), csv_serial.end(), '\n'), 9);
}

TEST(Determinism, SweepRowsMatchFieldByFieldAcrossThreadCounts) {
  const ContactTrace trace = small_trace();
  SweepConfig config = base_sweep();
  config.schemes = {SchemeKind::kNclCache};
  config.ncl_counts = {1, 2, 3};
  config.threads = 1;
  const auto serial = run_sweep(trace, config);
  config.threads = 8;
  const auto threaded = run_sweep(trace, config);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scheme, threaded[i].scheme);
    EXPECT_EQ(serial[i].ncl_count, threaded[i].ncl_count);
    EXPECT_EQ(serial[i].success_ratio, threaded[i].success_ratio);
    EXPECT_EQ(serial[i].delay_hours, threaded[i].delay_hours);
    EXPECT_EQ(serial[i].copies_per_item, threaded[i].copies_per_item);
    EXPECT_EQ(serial[i].replacement_overhead, threaded[i].replacement_overhead);
    EXPECT_EQ(serial[i].queries, threaded[i].queries);
  }
}

TEST(Determinism, AllPairsPathsMatchesSerialConstruction) {
  const ContactTrace trace = small_trace();
  const ContactGraph graph = build_contact_graph(trace);
  const Time horizon = hours(6);

  const AllPairsPaths threaded(graph, horizon, 8, /*threads=*/8);
  const AllPairsPaths one_thread(graph, horizon, 8, /*threads=*/1);

  // Reference: the plain serial per-root construction.
  std::vector<PathTable> reference;
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    reference.push_back(compute_opportunistic_paths(graph, root, horizon, 8));
  }

  for (NodeId from = 0; from < graph.node_count(); ++from) {
    for (NodeId to = 0; to < graph.node_count(); ++to) {
      const double expected =
          from == to ? 1.0
                     : reference[static_cast<std::size_t>(to)].weight(from);
      EXPECT_EQ(threaded.weight(from, to), expected);
      EXPECT_EQ(one_thread.weight(from, to), expected);
      EXPECT_EQ(threaded.weight_at(from, to, horizon / 2.0),
                one_thread.weight_at(from, to, horizon / 2.0));
    }
  }
  // Full table contents, not just weights.
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    const PathTable& a = threaded.table(root);
    const PathTable& b = reference[static_cast<std::size_t>(root)];
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      EXPECT_EQ(a.entry(node).next_hop, b.entry(node).next_hop);
      EXPECT_EQ(a.entry(node).hops, b.entry(node).hops);
      EXPECT_EQ(a.entry(node).last_rate, b.entry(node).last_rate);
      EXPECT_EQ(a.rates(node), b.rates(node));
    }
  }
}

TEST(Determinism, NclMetricsAndSelectionMatchAcrossThreadCounts) {
  const ContactTrace trace = small_trace();
  const ContactGraph graph = build_contact_graph(trace);
  const Time horizon = hours(6);

  const std::vector<double> serial = ncl_metrics(graph, horizon, 8, 1);
  const std::vector<double> threaded = ncl_metrics(graph, horizon, 8, 8);
  EXPECT_EQ(serial, threaded);

  const NclSelection sel_serial = select_ncls(graph, horizon, 4, 8, 1);
  const NclSelection sel_threaded = select_ncls(graph, horizon, 4, 8, 8);
  EXPECT_EQ(sel_serial.central_nodes, sel_threaded.central_nodes);
  EXPECT_EQ(sel_serial.metric, sel_threaded.metric);

  EXPECT_EQ(calibrate_horizon(graph, 0.3, minutes(1), days(90), 8, 1),
            calibrate_horizon(graph, 0.3, minutes(1), days(90), 8, 8));
}

TEST(Determinism, ExperimentRepetitionsMatchAcrossThreadCounts) {
  const ContactTrace trace = small_trace();
  ExperimentConfig config;
  config.avg_lifetime = days(1);
  config.avg_data_size = megabits(40);
  config.ncl_count = 2;
  config.repetitions = 3;
  config.auto_horizon = false;
  config.sim.path_horizon = hours(6);
  config.sim.maintenance_interval = hours(12);

  config.sim.threads = 1;
  const ExperimentResult serial =
      run_experiment(trace, SchemeKind::kNclCache, config);
  config.sim.threads = 8;
  const ExperimentResult threaded =
      run_experiment(trace, SchemeKind::kNclCache, config);

  EXPECT_EQ(serial.success_ratio.mean(), threaded.success_ratio.mean());
  EXPECT_EQ(serial.success_ratio.stddev(), threaded.success_ratio.stddev());
  EXPECT_EQ(serial.delay_hours.mean(), threaded.delay_hours.mean());
  EXPECT_EQ(serial.copies_per_item.mean(), threaded.copies_per_item.mean());
  EXPECT_EQ(serial.replacement_overhead.mean(),
            threaded.replacement_overhead.mean());
  EXPECT_EQ(serial.queries_issued.mean(), threaded.queries_issued.mean());
  EXPECT_EQ(serial.queries_satisfied.mean(),
            threaded.queries_satisfied.mean());
  EXPECT_EQ(serial.gigabytes_transferred.mean(),
            threaded.gigabytes_transferred.mean());
}

TEST(Determinism, ProgressIsMonotoneAndCompleteUnderThreads) {
  const ContactTrace trace = small_trace();
  SweepConfig config = base_sweep();
  config.schemes = {SchemeKind::kNoCache};
  config.lifetimes = {hours(12), days(1)};
  config.ncl_counts = {1, 2};
  config.threads = 8;

  std::vector<std::pair<std::size_t, std::size_t>> calls;
  run_sweep(trace, config, [&](std::size_t done, std::size_t total) {
    calls.emplace_back(done, total);
  });
  // One call per cell; `done` counts completed cells 1..total in order
  // even when cells complete out of order, and the last call says
  // done == total.
  ASSERT_EQ(calls.size(), 4u);
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i].first, i + 1);
    EXPECT_EQ(calls[i].second, 4u);
  }
  EXPECT_EQ(calls.back().first, calls.back().second);
}

}  // namespace
}  // namespace dtn

#include "trace/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "graph/contact_graph.h"
#include "graph/analysis.h"

namespace dtn {
namespace {

MobilityConfig small_config() {
  MobilityConfig c;
  c.node_count = 12;
  c.duration = hours(6);
  c.area_width = 300.0;
  c.area_height = 300.0;
  c.comm_range = 40.0;
  c.sample_interval = 10.0;
  c.seed = 5;
  return c;
}

double dist(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

TEST(Mobility, DeterministicForSameSeed) {
  const ContactTrace a = generate_mobility_trace(small_config());
  const ContactTrace b = generate_mobility_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(Mobility, DifferentSeedsDiffer) {
  MobilityConfig c = small_config();
  const ContactTrace a = generate_mobility_trace(c);
  c.seed = 99;
  const ContactTrace b = generate_mobility_trace(c);
  EXPECT_NE(a.size(), b.size());
}

TEST(Mobility, PositionsStayInsideArea) {
  const MobilityConfig c = small_config();
  const MobilitySimulator sim(c);
  for (NodeId node = 0; node < c.node_count; ++node) {
    for (Time t = 0.0; t <= c.duration; t += 137.0) {
      const Position p = sim.position(node, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, c.area_width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, c.area_height);
    }
  }
}

TEST(Mobility, MovementRespectsSpeedLimit) {
  const MobilityConfig c = small_config();
  const MobilitySimulator sim(c);
  const Time dt = 5.0;
  for (NodeId node = 0; node < 4; ++node) {
    for (Time t = 0.0; t + dt <= c.duration; t += dt) {
      const double moved = dist(sim.position(node, t), sim.position(node, t + dt));
      EXPECT_LE(moved, c.speed_max * dt + 1e-6);
    }
  }
}

TEST(Mobility, ContactsMatchRangeAtStart) {
  const MobilityConfig c = small_config();
  const MobilitySimulator sim(c);
  const ContactTrace trace = sim.generate();
  ASSERT_GT(trace.size(), 0u);
  for (const auto& e : trace.events()) {
    const double d = dist(sim.position(e.a, e.start), sim.position(e.b, e.start));
    EXPECT_LE(d, c.comm_range + 1e-6);
  }
}

TEST(Mobility, ContactDurationsPositiveAndWithinTrace) {
  const MobilityConfig c = small_config();
  const ContactTrace trace = generate_mobility_trace(c);
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.duration, c.sample_interval);
    EXPECT_GE(e.start, 0.0);
    EXPECT_LE(e.start, c.duration);
  }
}

TEST(Mobility, LargerRangeMeansMoreContactTime) {
  MobilityConfig c = small_config();
  c.comm_range = 20.0;
  const ContactTrace narrow = generate_mobility_trace(c);
  c.comm_range = 80.0;
  const ContactTrace wide = generate_mobility_trace(c);
  auto total_time = [](const ContactTrace& t) {
    double total = 0.0;
    for (const auto& e : t.events()) total += e.duration;
    return total;
  };
  EXPECT_GT(total_time(wide), total_time(narrow));
}

TEST(Mobility, HomeAttachmentCreatesHubs) {
  // Nodes with central homes should accumulate more contacts than nodes
  // parked in a corner: weighted degree inequality grows vs pure RWP.
  MobilityConfig rwp = small_config();
  rwp.node_count = 20;
  rwp.duration = hours(12);
  MobilityConfig homed = rwp;
  homed.home_attachment = 0.9;
  homed.home_sigma = 30.0;

  const ContactGraph g_rwp =
      build_contact_graph(generate_mobility_trace(rwp));
  const ContactGraph g_homed =
      build_contact_graph(generate_mobility_trace(homed));

  const double gini_rwp = gini(weighted_degrees(g_rwp));
  const double gini_homed = gini(weighted_degrees(g_homed));
  EXPECT_GT(gini_homed, gini_rwp);
}

TEST(Mobility, InvalidConfigsThrow) {
  MobilityConfig c = small_config();
  c.node_count = 1;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
  c = small_config();
  c.comm_range = 0.0;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
  c = small_config();
  c.speed_min = 0.0;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
  c = small_config();
  c.speed_max = c.speed_min / 2.0;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
  c = small_config();
  c.home_attachment = 1.5;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
  c = small_config();
  c.sample_interval = 0.0;
  EXPECT_THROW(MobilitySimulator{c}, std::invalid_argument);
}

TEST(Mobility, TraceFeedsStandardPipeline) {
  // The generated trace must run through the normal graph machinery.
  MobilityConfig c = small_config();
  c.node_count = 15;
  c.duration = hours(12);
  const ContactTrace trace = generate_mobility_trace(c);
  const ContactGraph graph = build_contact_graph(trace);
  EXPECT_GT(graph.edge_count(), 0u);
}

}  // namespace
}  // namespace dtn

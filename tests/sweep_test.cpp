#include "experiment/sweep.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace dtn {
namespace {

ContactTrace sweep_trace() {
  SyntheticTraceConfig c;
  c.node_count = 16;
  c.duration = days(8);
  c.target_total_contacts = 3000;
  c.seed = 3;
  return generate_trace(c);
}

SweepConfig base_sweep() {
  SweepConfig s;
  s.base.avg_lifetime = days(1);
  s.base.avg_data_size = megabits(40);
  s.base.ncl_count = 2;
  s.base.repetitions = 1;
  s.base.sim.maintenance_interval = hours(12);
  return s;
}

TEST(Sweep, CrossProductSize) {
  SweepConfig s = base_sweep();
  s.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  s.lifetimes = {hours(12), days(1)};
  s.ncl_counts = {1, 2, 3};
  const auto rows = run_sweep(sweep_trace(), s);
  EXPECT_EQ(rows.size(), 2u * 2u * 1u * 3u);
}

TEST(Sweep, EmptyAxesFallBackToBase) {
  SweepConfig s = base_sweep();
  const auto rows = run_sweep(sweep_trace(), s);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].scheme, "NCL-Cache");
  EXPECT_DOUBLE_EQ(rows[0].avg_lifetime, days(1));
  EXPECT_EQ(rows[0].ncl_count, 2);
}

TEST(Sweep, ProgressCallbackCoversAllCells) {
  SweepConfig s = base_sweep();
  s.schemes = {SchemeKind::kNoCache};
  s.lifetimes = {hours(12), days(1)};
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  run_sweep(sweep_trace(), s, [&](std::size_t done, std::size_t total) {
    calls.emplace_back(done, total);
  });
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls.front(), (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(calls.back(), (std::pair<std::size_t, std::size_t>{2, 2}));
}

TEST(Sweep, RowsCarryMeaningfulMetrics) {
  SweepConfig s = base_sweep();
  s.schemes = {SchemeKind::kNclCache};
  const auto rows = run_sweep(sweep_trace(), s);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].queries, 0.0);
  EXPECT_GE(rows[0].success_ratio, 0.0);
  EXPECT_LE(rows[0].success_ratio, 1.0);
}

TEST(Sweep, CsvShape) {
  SweepConfig s = base_sweep();
  s.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  const auto rows = run_sweep(sweep_trace(), s);
  const std::string csv = sweep_to_csv(rows);
  // Header + one line per row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(rows.size()) + 1);
  EXPECT_NE(csv.find("scheme,lifetime_hours"), std::string::npos);
  EXPECT_NE(csv.find("NCL-Cache,24,"), std::string::npos);
}

// Golden test pinning the sweep_to_csv contract — header text, column
// order, 6-significant-digit precision, and the unit conversions (lifetime
// seconds -> hours, size bytes -> megabits). Any refactoring of the sweep
// (parallel or otherwise) that changes a byte of this output is a breaking
// change to downstream CSV consumers and must fail here.
TEST(Sweep, GoldenCsvFormat) {
  std::vector<SweepRow> rows;

  SweepRow a;
  a.scheme = "NCL-Cache";
  a.avg_lifetime = hours(12);
  a.avg_data_size = megabits(40);
  a.ncl_count = 4;
  a.success_ratio = 0.123456789;  // rounds to 6 significant digits
  a.delay_hours = 1.5;
  a.copies_per_item = 2.25;
  a.replacement_overhead = 0.0625;
  a.queries = 1234.5;
  rows.push_back(a);

  SweepRow b;
  b.scheme = "NoCache";
  b.avg_lifetime = weeks(1);
  b.avg_data_size = megabits(100);
  b.ncl_count = 1;
  b.success_ratio = 1.0;
  b.delay_hours = 0.0;
  b.copies_per_item = 1.0 / 3.0;        // 0.333333
  b.replacement_overhead = 12345678.0;  // switches to scientific notation
  b.queries = 2e6;
  rows.push_back(b);

  const std::string golden =
      "scheme,lifetime_hours,size_mb,k,success_ratio,delay_hours,"
      "copies_per_item,replacement_overhead,queries\n"
      "NCL-Cache,12,40,4,0.123457,1.5,2.25,0.0625,1234.5\n"
      "NoCache,168,100,1,1,0,0.333333,1.23457e+07,2e+06\n";
  EXPECT_EQ(sweep_to_csv(rows), golden);
}

TEST(Sweep, CsvEmptyRowsStillEmitHeader) {
  EXPECT_EQ(sweep_to_csv({}),
            "scheme,lifetime_hours,size_mb,k,success_ratio,delay_hours,"
            "copies_per_item,replacement_overhead,queries\n");
}

TEST(Sweep, Deterministic) {
  SweepConfig s = base_sweep();
  const auto a = run_sweep(sweep_trace(), s);
  const auto b = run_sweep(sweep_trace(), s);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].success_ratio, b[0].success_ratio);
}

}  // namespace
}  // namespace dtn

// Lint fixture: constructs that LOOK like banned ones but are fine. NEVER
// compiled — tools/lint_determinism.py --self-test asserts that nothing in
// this file is flagged (the false-positive regression suite of the lint).
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Words containing "rand" are not rand(): no word-boundary false positives.
int strand(int x) { return x; }
int operand(int x) { return x; }
int clean_rand_lookalikes() { return strand(1) + operand(2); }

// rand() in a comment or a string literal is not a finding:
// e.g. "never call rand() or time(nullptr) here".
std::string clean_comment_mention() { return "rand() is banned"; }

// A member called now() on a non-clock object is not a clock read.
struct Simulation {
  double now_ = 0.0;
  double now() const { return now_; }
};
double clean_member_now(const Simulation& sim) { return sim.now(); }

// time as an identifier (not the libc call with nullptr/NULL/0).
double clean_time_identifier(double time) { return time * 2.0; }

// Unordered iteration in an order-INDEPENDENT function (no CSV, no stats
// folding): predicates and counts do not depend on iteration order.
std::size_t clean_unordered_count(
    const std::unordered_map<int, double>& entries) {
  std::size_t n = 0;
  for (const auto& kv : entries) {
    if (kv.second > 0.0) ++n;
  }
  return n;
}

// CSV writing from an ORDERED container is deterministic and fine.
std::string clean_ordered_csv(const std::map<int, double>& rows) {
  std::string csv = "id,value\n";
  for (const auto& kv : rows) {
    csv += std::to_string(kv.first) + "," + std::to_string(kv.second) + "\n";
  }
  return csv;
}

// Sorting the keys first makes unordered storage safe to emit.
std::string clean_sorted_keys_csv(
    const std::unordered_map<int, double>& rows) {
  std::vector<int> keys;
  keys.reserve(rows.size());
  for (std::size_t i = 0; i < keys.capacity(); ++i) {
  }
  std::string csv = "id\n";
  for (int key : keys) {
    csv += std::to_string(key) + "\n";
  }
  return csv;
}

}  // namespace fixture

// Lint fixture: every banned construct below appears ONLY inside comments,
// string/char literals, raw strings, or preprocessor lines. NEVER compiled.
// The lexer-based lint must report nothing here; the retired line-regex
// implementation false-positived on several of these (most famously banned
// tokens quoted in comments and strings — which is exactly how this tree's
// own documentation talks about the rules).
#include <string>

namespace fixture {

// Line comments quoting the banned constructs:
// rand(); srand(7); std::random_device rd; time(nullptr);
// steady_clock::now(); last_write_time(p);

/* A block comment with the scope-based rules' triggers:
   while (spin) { std::vector<double> per_iteration; }
   for (const auto& kv : sizes_) { csv.add_cell(kv.second); }
   where sizes_ is a std::unordered_map<int, double>.
*/

const char* banned_in_strings() {
  return "rand() srand(1) std::random_device time(nullptr) "
         "system_clock::now() last_write_time(path)";
}

const char* banned_in_raw_string() {
  return R"lint(
    for (const auto& kv : sizes_) { csv.add_row(kv.second); }
    while (spin) { std::vector<int> per_iteration; }
    time(nullptr); std::rand(); std::random_device entropy;
  )lint";
}

// A char literal holding a lone quote must not unbalance the string
// scanner: the rand() in this comment is still a comment afterwards.
char banned_in_char_literal() { return '"'; }

// Preprocessor lines are invisible to the lint, including continuations:
#define FIXTURE_NOT_A_SEED(x) \
  ((x) + 0 /* not time(nullptr), not rand() */)

int fixture_entry() { return FIXTURE_NOT_A_SEED(1); }

}  // namespace fixture

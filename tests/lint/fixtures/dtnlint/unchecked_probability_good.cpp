// dtnlint fixture: probability plumbing that honours the Eq. 2/4 [0,1]
// contract. NEVER compiled — the --self-test asserts nothing here fires
// (the false-positive regression suite of the unchecked-probability rule).
#include <algorithm>

namespace fixture {

double hypoexp_cdf(double t, const double* rates, int k);
double reply_probability(double tau, double ttl);
double path_weight(const int* hops, int len, double ttl);

struct CacheEntry {
  double reply = 0.0;
};

// A comment saying `return p;` after hypoexp_cdf(...) would be flagged is
// not a finding, and neither is the same text in a string literal.
const char* clean_comment_mention() {
  return "const double p = hypoexp_cdf(t, r, k); return p;";
}

// The blessed pattern: assert the contract, then let the value escape.
double clean_checked_return(double t, const double* rates, int k) {
  const double p = hypoexp_cdf(t, rates, k);
  DTN_CHECK_PROB(p);
  return p;
}

// Clamping before the store also discharges the contract.
void clean_clamped_store(CacheEntry& entry, double tau, double ttl) {
  double p = reply_probability(tau, ttl);
  p = std::clamp(p, 0.0, 1.0);
  entry.reply = p;
}

// Comparisons and local arithmetic never escape the raw value.
int clean_comparison_only(const int* hops, int len, double ttl) {
  const double w = path_weight(hops, len, ttl);
  if (w > 0.5) {
    return 1;
  }
  return 0;
}

// Reassignment with a non-probability expression ends the taint.
double clean_reassigned(double t, const double* rates, int k) {
  double p = hypoexp_cdf(t, rates, k);
  p = 0.5;
  return p;
}

}  // namespace fixture

// dtnlint fixture: seeded pool-lifetime violations. NEVER compiled — the
// --self-test asserts every violation below is caught, and that no OTHER
// rule fires in this file.
#include <cstdint>

namespace fixture {

struct Token {
  int data = 0;
  int central = 0;
};

struct Pool {
  using Handle = std::uint32_t;
  Handle next(Handle h) const;
  Token& get(Handle h);
  void release(Handle h);
};

struct Arena {
  void* allocate(std::size_t bytes);
  void reset();
};

Pool token_pool_;
Arena arena_;

// Straight-line use-after-release: `h` is read by get() after release().
int bad_straight_line(Pool::Handle h) {
  token_pool_.release(h);
  return token_pool_.get(h).data;  // seeded violation: h is dead here
}

// The released handle leaks out of the branch: only the then-branch
// releases, but the use after the conditional sits on that path too.
int bad_branch_leak(Pool::Handle h, bool drop) {
  if (drop) {
    token_pool_.release(h);
  }
  return token_pool_.get(h).data;  // seeded violation: dead when drop
}

// A reference obtained from get() dies with its slot: releasing the
// handle and then reading through the reference is the same bug.
int bad_stale_reference(Pool::Handle h) {
  Token& token = token_pool_.get(h);
  token_pool_.release(h);
  return token.data;  // seeded violation: token references a dead slot
}

// Arena reset invalidates everything allocate() handed out before it.
int bad_arena_reset() {
  void* scratch = arena_.allocate(64);
  arena_.reset();
  return scratch != nullptr;  // seeded violation: scratch predates reset
}

}  // namespace fixture

// dtnlint fixture: begin/end bracketing that balances on every path.
// NEVER compiled — the --self-test asserts nothing here fires (the
// false-positive regression suite of the workspace-bracketing rule).

namespace fixture {

struct Workspace {
  void begin_contact(int a, int b);
  void end_contact();
};

Workspace ws_;
void do_work();
void fast_path();
void slow_path();

// A comment saying ws_.begin_contact(a, b) without end_contact() would be
// flagged is not a finding, and neither is the same text in a string.
const char* clean_comment_mention() {
  return "ws_.begin_contact(a, b); return;";
}

// The canonical shape (ncl_scheme.cpp on_contact): guard clauses return
// BEFORE the bracket opens, then one begin/end pair brackets the body.
int clean_on_contact(int a, int b, bool skip) {
  if (skip) {
    return 0;
  }
  ws_.begin_contact(a, b);
  do_work();
  ws_.end_contact();
  return 1;
}

// A conditional inside the bracket is fine while both branches leave the
// state unchanged.
void clean_branch_balanced(int a, int b, bool fast) {
  ws_.begin_contact(a, b);
  if (fast) {
    fast_path();
  } else {
    slow_path();
  }
  ws_.end_contact();
}

// Both branches close the bracket and return: no path leaves it open.
int clean_branch_returns(int a, int b, bool fast) {
  ws_.begin_contact(a, b);
  if (fast) {
    fast_path();
    ws_.end_contact();
    return 1;
  } else {
    slow_path();
    ws_.end_contact();
    return 2;
  }
}

// Per-iteration bracketing: each iteration opens and closes its own pair,
// so the loop body leaves the state where it found it.
void clean_loop_bracket(int n) {
  for (int i = 0; i + 1 < n; ++i) {
    ws_.begin_contact(i, i + 1);
    do_work();
    ws_.end_contact();
  }
}

}  // namespace fixture

// dtnlint fixture: seeded workspace-bracketing violations. NEVER
// compiled — the --self-test asserts every violation below is caught,
// and that no OTHER rule fires in this file.

namespace fixture {

struct Workspace {
  void begin_contact(int a, int b);
  void end_contact();
};

Workspace ws_;
void do_work();

// Early return while the bracket is open: the next contact aborts on the
// workspace-reuse DTN_CHECK.
int bad_early_return(int a, int b, bool busy) {
  ws_.begin_contact(a, b);
  if (busy) {
    return 0;  // seeded violation: skips end_contact()
  }
  ws_.end_contact();
  return 1;
}

// Falling off the end with the bracket still open.
void bad_fall_off_end(int a, int b) {
  ws_.begin_contact(a, b);
  do_work();
}  // seeded violation: no end_contact() on this path

// Only one branch of the conditional closes the bracket.
void bad_branch_disagreement(int a, int b, bool keep_open) {
  ws_.begin_contact(a, b);
  if (keep_open) {
    do_work();
  } else {
    ws_.end_contact();
  }
}  // seeded violation: open on the keep_open path

// Re-entering begin_contact while the previous bracket is still open.
void bad_rebegin(int a, int b) {
  ws_.begin_contact(a, b);
  ws_.begin_contact(a, b);  // seeded violation
  ws_.end_contact();
  ws_.end_contact();
}

// end_contact with no matching begin on this path.
void bad_end_without_begin(int a, int b, bool flag) {
  ws_.end_contact();  // seeded violation
  if (flag) {
    ws_.begin_contact(a, b);
    ws_.end_contact();
  }
}

// A loop iteration must leave the bracket where it found it.
void bad_loop_leaves_open(int n) {
  for (int i = 0; i + 1 < n; ++i) {
    ws_.begin_contact(i, i + 1);  // seeded violation: never closed in-iteration
  }
}

}  // namespace fixture

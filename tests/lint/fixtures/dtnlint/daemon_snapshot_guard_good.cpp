// dtnlint fixture: daemon-snapshot-guard clean patterns. NEVER compiled —
// the --self-test asserts zero findings here under the FULL rule set.
//
// Comment/string immunity probes (must not fire):
//   return shared_snapshot_.get();
//   AtomicTime copy = shared_scan_clock_;

namespace fixture {

struct Snapshot {
  unsigned long epoch;
};

struct SnapshotPtr {
  const Snapshot* get() const;
};

struct AtomicTime {
  double load(int order) const;
  void store(double value, int order);
  double exchange(double value, int order);
};

struct Mutex {};

SnapshotPtr shared_snapshot_;
AtomicTime shared_ingest_clock_;
AtomicTime shared_scan_clock_;
Mutex snapshot_mu_;
int kOrderAcquire;
int kOrderRelease;

void consume(const Snapshot* snap);
void consume_time(double t);

const char* shared_banner() {
  // A string mentioning the members is not a read of them.
  return "shared_snapshot_ swaps under snapshot_mu_; "
         "shared_ingest_clock_ is atomic";
}

// The canonical reader: copy the pointer under the guard, use the copy.
const Snapshot* good_guarded_read() {
  const std::lock_guard<std::mutex> guard(snapshot_mu_);
  return shared_snapshot_.get();
}

// The canonical writer: swap under the guard.
void good_guarded_publish(bool ready) {
  const std::lock_guard<std::mutex> guard(snapshot_mu_);
  if (ready) {
    consume(shared_snapshot_.get());  // guard covers nested scopes
  }
}

// Atomic members through explicit load/store with a memory order.
void good_atomic_clocks(double watermark) {
  shared_ingest_clock_.store(watermark, kOrderRelease);
  const double ingested = shared_ingest_clock_.load(kOrderAcquire);
  const double scanned = shared_scan_clock_.load(kOrderAcquire);
  consume_time(ingested - scanned);
  consume_time(shared_scan_clock_.exchange(0.0, kOrderRelease));
}

// `shared_ptr` / `shared_lock` the types are not `shared_*_` the members:
// the trailing-underscore convention keeps them out of the rule.
void good_type_names(std::shared_ptr<const Snapshot> snap) {
  const std::shared_lock<std::shared_mutex> guard(snapshot_mu_);
  consume(snap.get());
  consume(shared_snapshot_.get());  // and shared_lock counts as a guard
}

// A plain local whose name merely starts with shared_ but is member-named:
// still flagged if unguarded, so keep locals conventionally named.
void good_local_naming() {
  double sharedtotal = 0.0;  // no trailing underscore, not shared state
  consume_time(sharedtotal);
}

}  // namespace fixture

// dtnlint fixture: RNG usage near unordered containers that is fine.
// NEVER compiled — the --self-test asserts nothing here fires (the
// false-positive regression suite of the rng-order rule).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Rng {
  double uniform(double lo, double hi);
  bool bernoulli(double p);
};

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t salt);

std::unordered_map<int, double> demand_table_;
std::vector<int> sorted_keys_;
Rng rng_;

// A comment saying rng_.uniform(0.0, 1.0) inside an unordered loop would
// be flagged is not a finding, and neither is the same text in a string.
const char* clean_comment_mention() {
  return "for (kv : demand_table_) rng_.uniform(0.0, 1.0);";
}

// Iterating a sorted key list: draw order is deterministic even though
// the values come out of the unordered map by key lookup.
double clean_sorted_iteration() {
  double acc = 0.0;
  for (int key : sorted_keys_) {
    acc += demand_table_[key] * rng_.uniform(0.0, 1.0);
  }
  return acc;
}

// Unordered iteration with no draws in it folds into an order-independent
// sum; the RNG is not consumed.
double clean_unordered_no_draw() {
  double acc = 0.0;
  for (const auto& kv : demand_table_) {
    acc += kv.second;
  }
  return acc;
}

// Draw hoisted out of the loop: one draw, consumed order-independently.
double clean_hoisted_draw() {
  const double u = rng_.uniform(0.0, 1.0);
  double acc = 0.0;
  for (const auto& kv : demand_table_) {
    acc += kv.second * u;
  }
  return acc;
}

// derive_seed outside any unordered iteration is the blessed pattern.
std::uint64_t clean_derive_seed(std::uint64_t root, int node) {
  return derive_seed(root, static_cast<std::uint64_t>(node));
}

}  // namespace fixture

// dtnlint fixture: seeded rng-order violations. NEVER compiled — the
// --self-test asserts every violation below is caught, and that no OTHER
// rule fires in this file.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Rng {
  double uniform(double lo, double hi);
  bool bernoulli(double p);
};

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t salt);

std::unordered_map<int, double> demand_table_;
Rng rng_;

// Drawing inside iteration over an unordered container: the draw order
// follows hash-table layout, so the whole downstream stream shifts when
// the table is rehashed or the libstdc++ version changes.
double bad_draw_in_unordered_loop() {
  double acc = 0.0;
  for (const auto& kv : demand_table_) {
    acc += kv.second * rng_.uniform(0.0, 1.0);  // seeded violation
  }
  return acc;
}

// derive_seed consumption keyed by hash-iteration order is the same bug
// one level up: the derived streams get paired with different entities.
std::uint64_t bad_derive_seed_in_loop(std::uint64_t root) {
  std::uint64_t mix = 0;
  for (const auto& kv : demand_table_) {
    mix ^= derive_seed(root, static_cast<std::uint64_t>(kv.first));  // seeded violation
  }
  return mix;
}

// A draw hiding in a nested branch header inside the loop.
int bad_draw_in_branch_header() {
  int kept = 0;
  for (const auto& kv : demand_table_) {
    if (rng_.bernoulli(kv.second)) {  // seeded violation
      ++kept;
    }
  }
  return kept;
}

}  // namespace fixture

// dtnlint fixture: loop-adjacent container usage that allocates nothing
// per iteration. NEVER compiled — the --self-test asserts nothing here
// fires (the false-positive regression suite of the hot-loop-alloc rule).
#include <map>
#include <vector>

namespace fixture {

// The PR 5/6 pattern: storage lives in a workspace reused across calls.
struct Workspace {
  std::vector<int> scratch;
  std::map<int, int> ranks;
};

// A comment saying std::map<int, int> ranks; inside this loop would be
// flagged is not a finding, and neither is `new int[4]` in a string.
const char* clean_comment_mention() {
  return "std::map<int, int> ranks; int* p = new int[4];";
}

// Reusing hoisted workspace storage: clear() + push_back never construct
// a container inside the loop.
int clean_hoisted(Workspace& ws, int n) {
  ws.scratch.clear();
  for (int i = 0; i < n; ++i) {
    ws.scratch.push_back(i);
  }
  return static_cast<int>(ws.scratch.size());
}

// A reference into hoisted storage does not allocate.
int clean_reference_in_loop(Workspace& ws, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    std::map<int, int>& ranks = ws.ranks;
    ranks[i] = i;
    acc += static_cast<int>(ranks.size());
  }
  return acc;
}

// Construction outside any loop is fine: one allocation per call.
int clean_outside_loop(int n) {
  std::map<int, int> ranks;
  for (int i = 0; i < n; ++i) {
    ranks[i] = i;
  }
  return static_cast<int>(ranks.size());
}

}  // namespace fixture

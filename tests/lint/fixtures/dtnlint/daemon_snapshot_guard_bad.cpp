// dtnlint fixture: seeded daemon-snapshot-guard violations. NEVER
// compiled — the --self-test asserts every violation below is caught,
// and that no OTHER rule fires in this file.

namespace fixture {

struct Snapshot {
  unsigned long epoch;
};

struct SnapshotPtr {
  const Snapshot* get() const;
};

struct AtomicTime {
  double load(int order) const;
  void store(double value, int order);
};

struct Mutex {};

SnapshotPtr shared_snapshot_;
AtomicTime shared_ingest_clock_;
AtomicTime shared_scan_clock_;
Mutex snapshot_mu_;
int kOrderAcquire;

void consume(const Snapshot* snap);
void consume_time(double t);
void defer(void (*fn)());

// Bare read of the published pointer: no guard on this path, no atomic
// member call — a concurrent publish() can tear it.
const Snapshot* bad_unguarded_read() {
  return shared_snapshot_.get();  // seeded violation
}

// The guard lives and dies inside the branch; the read after the
// conditional runs unguarded on every path.
void bad_guard_dies_with_branch(bool fast) {
  if (fast) {
    const std::lock_guard<std::mutex> guard(snapshot_mu_);
    consume(shared_snapshot_.get());  // guarded: fine
  }
  consume(shared_snapshot_.get());  // seeded violation
}

// Raw read of an atomic member without .load(): the value itself is
// atomic, but the naming contract requires the explicit memory order.
void bad_clock_without_load() {
  consume_time(shared_ingest_clock_.load(kOrderAcquire));  // fine
  AtomicTime copy = shared_scan_clock_;  // seeded violation
  (void)copy;
}

// A lambda body runs at call time; the guard live at its definition site
// is long gone by then.
void bad_lambda_outlives_guard() {
  const std::lock_guard<std::mutex> guard(snapshot_mu_);
  defer([] { consume(shared_snapshot_.get()); });  // seeded violation
}

// Shared state read inside a conditional header, outside any guard.
void bad_read_in_condition() {
  if (shared_snapshot_.get() != nullptr) {  // seeded violation
    consume_time(0.0);
  }
}

}  // namespace fixture

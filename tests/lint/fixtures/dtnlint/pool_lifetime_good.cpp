// dtnlint fixture: pool/arena usage that LOOKS like use-after-release but
// is fine. NEVER compiled — the --self-test asserts nothing here fires
// (the false-positive regression suite of the pool-lifetime rule).
#include <cstdint>

namespace fixture {

struct Token {
  int data = 0;
};

struct Pool {
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xFFFFFFFFu;
  Handle next(Handle h) const;
  Token& get(Handle h);
  void release(Handle h);
};

struct Chain {
  Pool::Handle head = Pool::kNull;
  void append(Pool& pool, Pool::Handle h);
};

Pool token_pool_;

// A comment mentioning token_pool_.release(h) then token_pool_.get(h) is
// not a finding, and neither is "token_pool_.release(h)" in a string.
const char* clean_comment_mention() { return "token_pool_.release(h)"; }

// The canonical chain walk: the handle is rebound (`h = next`) after the
// release, before any read on the fall-through path.
int clean_chain_walk(Pool::Handle head, int now) {
  int dropped = 0;
  auto h = head;
  while (h != Pool::kNull) {
    const auto next = token_pool_.next(h);
    if (token_pool_.get(h).data < now) {
      token_pool_.release(h);
      ++dropped;
    }
    h = next;  // rebind kills the taint from the then-branch
  }
  return dropped;
}

// Release on one path, use on the *other* path of the same conditional:
// the branches are mutually exclusive.
int clean_branch_exclusive(Pool::Handle h, bool drop, Chain& kept) {
  if (drop) {
    token_pool_.release(h);
    return 0;
  } else {
    kept.append(token_pool_, h);
  }
  return 1;
}

// Release then `continue`: the statements after the conditional are a
// different iteration path and never see the dead handle.
int clean_release_continue(Pool::Handle head, int now) {
  int kept = 0;
  auto h = head;
  while (h != Pool::kNull) {
    const auto next = token_pool_.next(h);
    if (token_pool_.get(h).data < now) {
      token_pool_.release(h);
      h = next;
      continue;
    }
    ++kept;
    token_pool_.get(h).data += 1;  // reachable only when still live
    h = next;
  }
  return kept;
}

// get() nested inside another call's arguments produces a value, not a
// reference into the slot: `item` does not die with the handle.
int clean_value_copy(Pool::Handle h) {
  const Token item = token_pool_.get(h);  // copy, then release
  token_pool_.release(h);
  return item.data;
}

}  // namespace fixture

// dtnlint fixture: seeded hot-loop-alloc violations. NEVER compiled —
// the --self-test asserts every violation below is caught, and that no
// OTHER rule fires in this file. (Deliberately vector-free: a std::vector
// here would also trip the narrower legacy vector-in-loop rule, and each
// bad fixture must exercise exactly one rule.)
#include <deque>
#include <map>

namespace fixture {

// Allocating container constructed fresh every iteration.
int bad_map_in_loop(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    std::map<int, int> ranks;  // seeded violation
    ranks[i] = i;
    acc += static_cast<int>(ranks.size());
  }
  return acc;
}

// The same hazard one scope down: a branch body inside the loop.
int bad_deque_in_nested_branch(int n, bool flag) {
  int acc = 0;
  while (acc < n) {
    if (flag) {
      std::deque<int> backlog;  // seeded violation
      backlog.push_back(acc);
      acc += static_cast<int>(backlog.size());
    } else {
      ++acc;
    }
  }
  return acc;
}

// Raw `new` in a loop body is the container hazard without the container.
int bad_raw_new_in_loop(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    int* scratch = new int[4];  // seeded violation
    scratch[0] = i;
    acc += scratch[0];
    delete[] scratch;
  }
  return acc;
}

}  // namespace fixture

// dtnlint fixture: seeded unchecked-probability violations. NEVER
// compiled — the --self-test asserts every violation below is caught,
// and that no OTHER rule fires in this file.

namespace fixture {

double hypoexp_cdf(double t, const double* rates, int k);
double reply_probability(double tau, double ttl);
double path_weight(const int* hops, int len, double ttl);

struct CacheEntry {
  double reply = 0.0;
};

// Raw probability returned without DTN_CHECK_PROB or a clamp: the Eq. 2/4
// [0,1] contract is never asserted before the value escapes.
double bad_return_raw(double t, const double* rates, int k) {
  const double p = hypoexp_cdf(t, rates, k);
  return p;  // seeded violation
}

// Raw probability stored into longer-lived state.
void bad_store_raw(CacheEntry& entry, double tau, double ttl) {
  const double p = reply_probability(tau, ttl);
  entry.reply = p;  // seeded violation
}

// Raw probability stored through an index: same escape, different lvalue.
void bad_store_indexed(double* weights, const int* hops, int len, double ttl) {
  const double w = path_weight(hops, len, ttl);
  weights[0] = w;  // seeded violation
}

}  // namespace fixture

// Lint fixture: every banned construct in one file. NEVER compiled — this
// file exists so tools/lint_determinism.py --self-test can assert that each
// rule fires. Each block below must trip exactly the rule named above it.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// libc-rand: the hidden-global libc generator.
int banned_libc_rand() {
  srand(42);
  return rand() % 7 + std::rand() % 3;
}

// random-device: hardware entropy, different every run.
std::uint64_t banned_random_device() {
  std::random_device rd;
  return rd();
}

// wall-clock-seed: seeding from the wall clock.
long banned_wall_clock_seed() { return time(nullptr) + time(NULL); }

// chrono-now: clock reads inside simulation code.
double banned_chrono_now() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::system_clock::now();
  (void)t0;
  (void)t1;
  return 0.0;
}

// fs-mtime: file timestamps leaking into behavior.
long banned_fs_mtime() {
  const auto stamp = std::filesystem::last_write_time("trace.csv");
  return stamp.time_since_epoch().count();
}

// unordered-fold: hash-order iteration inside a CSV-writing function.
std::string banned_unordered_fold() {
  std::unordered_map<int, double> totals;
  std::string csv = "id,total\n";
  for (const auto& kv : totals) {
    csv += std::to_string(kv.first) + "," + std::to_string(kv.second) + "\n";
  }
  return csv;
}

// vector-in-loop: a per-iteration vector in (what would be) a hot loop.
double banned_vector_in_loop() {
  double total = 0.0;
  for (int i = 0; i < 8; ++i) {
    std::vector<double> rates(4, 1.0);
    total += rates[0];
  }
  int guard = 0;
  while (guard < 2) {
    std::vector<int> scratch;
    scratch.push_back(guard++);
    total += scratch.back();
  }
  return total;
}

}  // namespace fixture

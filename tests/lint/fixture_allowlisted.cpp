// Lint fixture: banned constructs that fixture_allowlist.txt suppresses.
// NEVER compiled — tools/lint_determinism.py --self-test asserts that these
// hits fire WITHOUT the allowlist and are silent WITH it.
#include <chrono>

namespace fixture {

// chrono-now, allowlisted: benchmark timing code is the legitimate use of
// clock reads (matches the ":elapsed_timer" substring entry).
double allowlisted_timing() {
  const auto elapsed_timer = std::chrono::steady_clock::now();
  (void)elapsed_timer;
  return 0.0;
}

// wall-clock-seed, allowlisted by file+rule without a substring.
long allowlisted_wall_clock() { return time(nullptr); }

}  // namespace fixture

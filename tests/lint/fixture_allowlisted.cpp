// Lint fixture: banned constructs that fixture_allowlist.txt suppresses.
// NEVER compiled — tools/lint_determinism.py --self-test asserts that these
// hits fire WITHOUT the allowlist and are silent WITH it.
#include <chrono>
#include <vector>

namespace fixture {

// chrono-now, allowlisted: benchmark timing code is the legitimate use of
// clock reads (matches the ":elapsed_timer" substring entry).
double allowlisted_timing() {
  const auto elapsed_timer = std::chrono::steady_clock::now();
  (void)elapsed_timer;
  return 0.0;
}

// wall-clock-seed, allowlisted by file+rule without a substring.
long allowlisted_wall_clock() { return time(nullptr); }

// vector-in-loop, allowlisted: mirrors the legacy reference path engine,
// which keeps the old per-iteration allocation pattern on purpose (matches
// the ":legacy_chain" substring entry).
double allowlisted_reference_loop() {
  double total = 0.0;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> legacy_chain(3, 1.0);
    total += legacy_chain[0];
  }
  return total;
}

}  // namespace fixture

#include "common/table.h"

#include <gtest/gtest.h>

namespace dtn {
namespace {

TEST(TextTable, HeadersAppearInOutput) {
  TextTable t({"scheme", "ratio"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("ratio"), std::string::npos);
}

TEST(TextTable, RowCellsAppearAligned) {
  TextTable t({"a", "b"});
  t.begin_row();
  t.add_cell("hello");
  t.add_number(1.5, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(TextTable, AddRowAtOnce) {
  TextTable t({"x", "y", "z"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 3u);
}

TEST(TextTable, IntegerFormatting) {
  TextTable t({"n"});
  t.begin_row();
  t.add_integer(1234567);
  EXPECT_NE(t.to_string().find("1234567"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,x\n2,y\n");
}

TEST(TextTable, MultipleRowsRendered) {
  TextTable t({"col"});
  for (int i = 0; i < 5; ++i) t.add_row({std::to_string(i)});
  EXPECT_EQ(t.row_count(), 5u);
  const std::string out = t.to_string();
  // header + separator + 5 rows = 7 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 7);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatDuration, AdaptiveUnits) {
  EXPECT_EQ(format_duration(30.0), "30.0s");
  EXPECT_EQ(format_duration(120.0), "2.0m");
  EXPECT_EQ(format_duration(7200.0), "2.0h");
  EXPECT_EQ(format_duration(172800.0), "2.0d");
}

}  // namespace
}  // namespace dtn

// Golden equivalence suite for the zero-allocation path engine.
//
// The engine rewrite (parent-chain rate storage + hypoexp workspaces +
// scratch-buffer relaxation) claims *bit-identical* output: only where the
// doubles live changed, never their values, order, or the formulas that
// produce them. These tests pin that claim against the reference engine —
// a line-for-line transcription of the legacy allocating construction kept
// alive as PathEngine::kReference — with EXPECT_EQ on raw doubles (no
// tolerances) at every layer: single-source tables, all-pairs tables,
// weight_at re-evaluations, batched weights_at, and a full sweep's CSV.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/sweep.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"
#include "graph/opportunistic_path.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

ContactTrace golden_trace(std::uint64_t seed) {
  SyntheticTraceConfig c;
  c.node_count = 24;
  c.duration = days(8);
  c.target_total_contacts = 5000;
  c.seed = seed;
  return generate_trace(c);
}

void expect_tables_identical(const PathTable& fast, const PathTable& ref) {
  ASSERT_EQ(fast.node_count(), ref.node_count());
  EXPECT_EQ(fast.root(), ref.root());
  EXPECT_EQ(fast.horizon(), ref.horizon());
  for (NodeId node = 0; node < fast.node_count(); ++node) {
    EXPECT_EQ(fast.entry(node).weight, ref.entry(node).weight);
    EXPECT_EQ(fast.entry(node).last_rate, ref.entry(node).last_rate);
    EXPECT_EQ(fast.entry(node).next_hop, ref.entry(node).next_hop);
    EXPECT_EQ(fast.entry(node).hops, ref.entry(node).hops);
    EXPECT_EQ(fast.rates(node), ref.rates(node));
    EXPECT_EQ(fast.path_to_root(node), ref.path_to_root(node));
  }
}

TEST(PathGolden, SingleSourceTablesBitIdentical) {
  const ContactGraph graph = build_contact_graph(golden_trace(3));
  const Time horizon = hours(6);
  PathWorkspace ws;  // shared across roots: reuse must not leak state
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    const PathTable fast =
        compute_opportunistic_paths(graph, root, horizon, 8, ws);
    const PathTable ref =
        compute_opportunistic_paths_reference(graph, root, horizon, 8);
    expect_tables_identical(fast, ref);
  }
}

TEST(PathGolden, SingleSourceTablesBitIdenticalShortHorizon) {
  // A short horizon keeps weights away from saturation, exercising the
  // closed-form/uniformization dispatch boundary differently.
  const ContactGraph graph = build_contact_graph(golden_trace(11));
  const Time horizon = minutes(20);
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    expect_tables_identical(
        compute_opportunistic_paths(graph, root, horizon, 8),
        compute_opportunistic_paths_reference(graph, root, horizon, 8));
  }
}

TEST(PathGolden, AllPairsTableForTableBitIdentical) {
  const ContactGraph graph = build_contact_graph(golden_trace(5));
  const Time horizon = hours(6);
  const AllPairsPaths fast(graph, horizon, 8, /*threads=*/8,
                           PathEngine::kFast);
  const AllPairsPaths ref(graph, horizon, 8, /*threads=*/1,
                          PathEngine::kReference);
  ASSERT_EQ(fast.node_count(), ref.node_count());
  for (NodeId root = 0; root < fast.node_count(); ++root) {
    expect_tables_identical(fast.table(root), ref.table(root));
  }
}

TEST(PathGolden, WeightAtAndBatchedWeightsAtBitIdentical) {
  const ContactGraph graph = build_contact_graph(golden_trace(5));
  const Time horizon = hours(6);
  const AllPairsPaths fast(graph, horizon, 8, 0, PathEngine::kFast);
  const AllPairsPaths ref(graph, horizon, 8, 0, PathEngine::kReference);

  std::vector<NodeId> from_list(static_cast<std::size_t>(fast.node_count()));
  std::iota(from_list.begin(), from_list.end(), NodeId{0});
  std::vector<double> batched;
  for (const Time budget : {minutes(10), hours(1), hours(3), hours(6)}) {
    for (NodeId to = 0; to < fast.node_count(); ++to) {
      fast.weights_at(from_list, to, budget, batched);
      ASSERT_EQ(batched.size(), from_list.size());
      for (NodeId from = 0; from < fast.node_count(); ++from) {
        const double scalar = fast.weight_at(from, to, budget);
        EXPECT_EQ(batched[static_cast<std::size_t>(from)], scalar);
        EXPECT_EQ(scalar, ref.weight_at(from, to, budget));
      }
    }
  }
}

TEST(PathGolden, SweepCsvByteIdenticalAcrossEngines) {
  const ContactTrace trace = golden_trace(3);

  SweepConfig config;
  config.base.avg_lifetime = days(1);
  config.base.avg_data_size = megabits(40);
  config.base.ncl_count = 2;
  config.base.repetitions = 2;
  config.base.auto_horizon = false;
  config.base.sim.path_horizon = hours(6);
  config.base.sim.maintenance_interval = hours(12);
  config.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  config.lifetimes = {hours(12), days(1)};
  config.ncl_counts = {1, 2};

  config.base.sim.path_engine = PathEngine::kFast;
  const std::string csv_fast = sweep_to_csv(run_sweep(trace, config));

  config.base.sim.path_engine = PathEngine::kReference;
  const std::string csv_ref = sweep_to_csv(run_sweep(trace, config));

  EXPECT_EQ(csv_fast, csv_ref);
  EXPECT_FALSE(csv_fast.empty());
}

}  // namespace
}  // namespace dtn

#include "experiment/experiment.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace dtn {
namespace {

SyntheticTraceConfig tiny_trace_config() {
  SyntheticTraceConfig c;
  c.name = "tiny";
  c.node_count = 20;
  c.duration = days(6);
  c.target_total_contacts = 12000;
  c.popularity_shape = 1.8;
  c.seed = 11;
  return c;
}

ExperimentConfig tiny_experiment_config() {
  ExperimentConfig c;
  c.avg_lifetime = hours(12);
  c.avg_data_size = megabits(50);
  c.ncl_count = 3;
  c.repetitions = 1;
  c.sim.path_horizon = hours(3);
  c.sim.maintenance_interval = hours(6);
  c.seed = 5;
  return c;
}

TEST(Experiment, SchemeKindNames) {
  EXPECT_EQ(scheme_kind_name(SchemeKind::kNclCache), "NCL-Cache");
  EXPECT_EQ(scheme_kind_name(SchemeKind::kNoCache), "NoCache");
  EXPECT_EQ(scheme_kind_name(SchemeKind::kRandomCache), "RandomCache");
  EXPECT_EQ(scheme_kind_name(SchemeKind::kCacheData), "CacheData");
  EXPECT_EQ(scheme_kind_name(SchemeKind::kBundleCache), "BundleCache");
}

TEST(Experiment, BufferCapacitiesWithinRange) {
  ExperimentConfig c = tiny_experiment_config();
  const auto buffers = draw_buffer_capacities(c, 50, 9);
  ASSERT_EQ(buffers.size(), 50u);
  for (Bytes b : buffers) {
    EXPECT_GE(b, c.buffer_min);
    EXPECT_LE(b, c.buffer_max);
  }
}

TEST(Experiment, BufferCapacitiesDeterministic) {
  ExperimentConfig c = tiny_experiment_config();
  EXPECT_EQ(draw_buffer_capacities(c, 10, 4), draw_buffer_capacities(c, 10, 4));
}

TEST(Experiment, InvalidBufferRangeThrows) {
  ExperimentConfig c = tiny_experiment_config();
  c.buffer_min = 100;
  c.buffer_max = 50;
  EXPECT_THROW(draw_buffer_capacities(c, 10, 1), std::invalid_argument);
}

TEST(Experiment, WarmupSelectionPicksRequestedCount) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  const ExperimentConfig config = tiny_experiment_config();
  const NclSelection sel = warmup_ncl_selection(trace, config);
  EXPECT_EQ(sel.central_nodes.size(), 3u);
  // Central nodes must be among the best-connected: their metric exceeds
  // the median.
  std::vector<double> sorted = sel.metric;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  for (NodeId c : sel.central_nodes) {
    EXPECT_GE(sel.metric[static_cast<std::size_t>(c)], median);
  }
}

TEST(Experiment, MakeSchemeProducesAllKinds) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  const ExperimentConfig config = tiny_experiment_config();
  const NclSelection sel = warmup_ncl_selection(trace, config);
  for (SchemeKind kind :
       {SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache,
        SchemeKind::kCacheData, SchemeKind::kBundleCache}) {
    const auto buffers = draw_buffer_capacities(config, trace.node_count(), 1);
    const auto scheme = make_scheme(kind, config, sel, buffers);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), scheme_kind_name(kind));
  }
}

TEST(Experiment, RunProducesQueriesAndDeliveries) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  const ExperimentConfig config = tiny_experiment_config();
  const ExperimentResult r =
      run_experiment(trace, SchemeKind::kNclCache, config);
  EXPECT_EQ(r.scheme, "NCL-Cache");
  EXPECT_GT(r.queries_issued.mean(), 0.0);
  EXPECT_GT(r.success_ratio.mean(), 0.0);
  EXPECT_LE(r.success_ratio.mean(), 1.0);
}

TEST(Experiment, RepetitionsAggregated) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  ExperimentConfig config = tiny_experiment_config();
  config.repetitions = 3;
  const ExperimentResult r =
      run_experiment(trace, SchemeKind::kNoCache, config);
  EXPECT_EQ(r.success_ratio.count(), 3u);
}

TEST(Experiment, ComparisonRunsAllSchemes) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  const ExperimentConfig config = tiny_experiment_config();
  const auto results = run_comparison(
      trace, {SchemeKind::kNclCache, SchemeKind::kNoCache}, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].scheme, "NCL-Cache");
  EXPECT_EQ(results[1].scheme, "NoCache");
}

TEST(Experiment, InvalidRepetitionsThrow) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  ExperimentConfig config = tiny_experiment_config();
  config.repetitions = 0;
  EXPECT_THROW(run_experiment(trace, SchemeKind::kNoCache, config),
               std::invalid_argument);
}

TEST(Experiment, SigmoidParametersPassThrough) {
  // Invalid sigmoid anchors must surface as an exception when the sigmoid
  // response mode is actually exercised.
  const ContactTrace trace = generate_trace(tiny_trace_config());
  ExperimentConfig config = tiny_experiment_config();
  config.response_mode = ResponseMode::kSigmoid;
  config.sigmoid = SigmoidResponse{0.2, 0.8};  // p_min <= p_max/2: invalid
  EXPECT_THROW(run_experiment(trace, SchemeKind::kNclCache, config),
               std::invalid_argument);
  config.sigmoid = SigmoidResponse{0.45, 0.8};
  EXPECT_NO_THROW(run_experiment(trace, SchemeKind::kNclCache, config));
}

TEST(Experiment, AutoHorizonOverridesFixed) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  ExperimentConfig config = tiny_experiment_config();
  const ContactGraph graph = warmup_graph(trace, config);
  config.auto_horizon = false;
  config.sim.path_horizon = hours(5);
  EXPECT_DOUBLE_EQ(effective_horizon(graph, config), hours(5));
  config.auto_horizon = true;
  const Time calibrated = effective_horizon(graph, config);
  EXPECT_GT(calibrated, 0.0);
  EXPECT_NE(calibrated, hours(5));
}

TEST(Experiment, DeterministicAcrossRuns) {
  const ContactTrace trace = generate_trace(tiny_trace_config());
  const ExperimentConfig config = tiny_experiment_config();
  const ExperimentResult a =
      run_experiment(trace, SchemeKind::kNclCache, config);
  const ExperimentResult b =
      run_experiment(trace, SchemeKind::kNclCache, config);
  EXPECT_DOUBLE_EQ(a.success_ratio.mean(), b.success_ratio.mean());
  EXPECT_DOUBLE_EQ(a.copies_per_item.mean(), b.copies_per_item.mean());
}

}  // namespace
}  // namespace dtn

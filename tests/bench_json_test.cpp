// Tests for the bench JSON artifact layer (bench/bench_json.h): stage
// timing/percentile records, work-unit derivation from instrumentation
// counter deltas, schema shape of the emitted document, string escaping,
// and the --json file round-trip consumed by tools/bench_compare.py.
#include "bench/bench_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/instrument.h"

namespace dtn::bench {
namespace {

BenchArgs make_args(int reps) {
  BenchArgs args;
  args.reps = reps;
  args.threads = 1;
  return args;
}

TEST(BenchJsonTest, StageRecordsRepsAndOrderedPercentiles) {
  JsonReport report("unit_test", make_args(5));
  int calls = 0;
  report.stage("work", [&] { ++calls; });
  EXPECT_EQ(calls, 5);  // reps=0 default resolves to --reps
  ASSERT_EQ(report.stages().size(), 1u);
  const StageRecord& s = report.stages()[0];
  EXPECT_EQ(s.name, "work");
  EXPECT_EQ(s.reps, 5);
  EXPECT_LE(s.p10_ns, s.median_ns);
  EXPECT_LE(s.median_ns, s.p90_ns);
  EXPECT_EQ(s.unit_counter, "");
  EXPECT_DOUBLE_EQ(s.work_units_per_rep, 1.0);
}

TEST(BenchJsonTest, WorkUnitsDerivedFromCounterDelta) {
  // Direct add() works in both instrumentation modes, so this test does
  // not depend on DTN_INSTRUMENT.
  JsonReport report("unit_test", make_args(4));
  report.stage(
      "dp",
      [] { instrument::add(instrument::Counter::kKnapsackDpCells, 250); },
      "knapsack_dp_cells");
  const StageRecord& s = report.stages()[0];
  EXPECT_EQ(s.unit_counter, "knapsack_dp_cells");
  EXPECT_DOUBLE_EQ(s.work_units_per_rep, 250.0);  // 1000 units / 4 reps
  // The per-stage counter deltas only list counters that moved.
  bool found = false;
  for (const auto& row : s.counters) {
    if (row.name == "knapsack_dp_cells") {
      EXPECT_EQ(row.value, 1000u);
      found = true;
    }
    EXPECT_NE(row.value, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(BenchJsonTest, MissingUnitCounterFallsBackToPerCall) {
  JsonReport report("unit_test", make_args(2));
  report.stage("idle", [] {}, "dijkstra_relaxations");
  // The named counter never moved: gate per call instead of dividing by 0.
  EXPECT_DOUBLE_EQ(report.stages()[0].work_units_per_rep, 1.0);
}

TEST(BenchJsonTest, ExplicitRepsOverrideArgsDefault) {
  JsonReport report("unit_test", make_args(7));
  int calls = 0;
  report.stage("once", [&] { ++calls; }, "", 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(report.stages()[0].reps, 1);
}

TEST(BenchJsonTest, JsonDocumentHasSchemaFields) {
  JsonReport report("schema_probe", make_args(2));
  report.stage(
      "stage \"one\"",
      [] { instrument::add(instrument::Counter::kSweepCells, 10); },
      "sweep_cells");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"schema_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"stages\": ["), std::string::npos);
  EXPECT_NE(json.find("\"median_ns\": "), std::string::npos);
  EXPECT_NE(json.find("\"work_units_per_rep\": "), std::string::npos);
  // Stage names pass through the escaper.
  EXPECT_NE(json.find("stage \\\"one\\\""), std::string::npos);
  // Braces and brackets balance — cheap structural sanity; the Python side
  // (bench_compare ctest entries) does the strict parse.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BenchJsonTest, WriteIfRequestedRoundTrips) {
  const std::string path = ::testing::TempDir() + "/bench_json_test.json";
  BenchArgs args = make_args(2);
  args.json = path;
  JsonReport report("round_trip", args);
  report.stage("s", [] {});
  ASSERT_TRUE(report.write_if_requested());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
  std::remove(path.c_str());
}

TEST(BenchJsonTest, WriteWithoutPathIsANoOpSuccess) {
  JsonReport report("no_path", make_args(1));
  EXPECT_TRUE(report.write_if_requested());
}

TEST(BenchJsonTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace dtn::bench

// Golden equivalence suite for the SoA/arena simulator rewrite.
//
// The fast NCL scheme (SimEngine::kFast — structure-of-arrays node state,
// slab-pooled bundle chains, reusable contact workspaces) claims
// *bit-identical* simulation output against SimEngine::kReference, the
// frozen per-object implementation in cache/ncl_scheme_reference.cpp. That
// claim only holds if the fast path consumes the RNG stream in exactly the
// legacy order, so these tests pin raw-double metric equality (EXPECT_EQ,
// no tolerances) across all four Table I trace presets and every scheme,
// plus byte-identity of a full sweep's CSV — the same contract
// tests/path_golden_test.cpp enforces for the path engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/sweep.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

// Table I presets shrunk to a bench-size slice (rate-preserving), so the
// full matrix stays in tier-1 time.
std::vector<SyntheticTraceConfig> golden_presets() {
  std::vector<SyntheticTraceConfig> presets = all_presets();
  for (auto& p : presets) p = p.with_duration(days(2));
  return presets;
}

ExperimentConfig golden_config() {
  ExperimentConfig config;
  config.avg_lifetime = hours(18);
  config.avg_data_size = megabits(40);
  config.ncl_count = 2;
  config.repetitions = 2;
  config.auto_horizon = false;
  config.sim.path_horizon = hours(4);
  config.sim.maintenance_interval = hours(12);
  config.seed = 77;
  return config;
}

void expect_stats_identical(const RunningStats& fast, const RunningStats& ref) {
  ASSERT_EQ(fast.count(), ref.count());
  EXPECT_EQ(fast.mean(), ref.mean());
  EXPECT_EQ(fast.variance(), ref.variance());
  EXPECT_EQ(fast.min(), ref.min());
  EXPECT_EQ(fast.max(), ref.max());
}

void expect_results_identical(const ExperimentResult& fast,
                              const ExperimentResult& ref) {
  EXPECT_EQ(fast.scheme, ref.scheme);
  expect_stats_identical(fast.success_ratio, ref.success_ratio);
  expect_stats_identical(fast.delay_hours, ref.delay_hours);
  expect_stats_identical(fast.copies_per_item, ref.copies_per_item);
  expect_stats_identical(fast.replacement_overhead, ref.replacement_overhead);
  expect_stats_identical(fast.queries_issued, ref.queries_issued);
  expect_stats_identical(fast.queries_satisfied, ref.queries_satisfied);
  expect_stats_identical(fast.gigabytes_transferred, ref.gigabytes_transferred);
  expect_stats_identical(fast.duplicate_deliveries, ref.duplicate_deliveries);
}

TEST(EngineGolden, AllPresetsAllSchemesBitIdentical) {
  const std::vector<SchemeKind> kinds = {
      SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache,
      SchemeKind::kCacheData, SchemeKind::kBundleCache};
  for (const SyntheticTraceConfig& preset : golden_presets()) {
    const ContactTrace trace = generate_trace(preset);
    for (SchemeKind kind : kinds) {
      ExperimentConfig config = golden_config();

      config.sim.sim_engine = SimEngine::kFast;
      const ExperimentResult fast = run_experiment(trace, kind, config);

      config.sim.sim_engine = SimEngine::kReference;
      const ExperimentResult ref = run_experiment(trace, kind, config);

      SCOPED_TRACE(preset.name + " / " + scheme_kind_name(kind));
      expect_results_identical(fast, ref);
    }
  }
}

TEST(EngineGolden, ReplacementStrategiesBitIdentical) {
  // The FIFO/LRU/GDS strategies exercise insertion-time eviction
  // (evict_for) instead of the knapsack exchange; the response-mode
  // variants exercise the sigmoid and unconditional Bernoulli draws.
  const ContactTrace trace =
      generate_trace(infocom05_preset().with_duration(days(2)));
  for (CacheStrategy strategy :
       {CacheStrategy::kUtilityExchange, CacheStrategy::kFifo,
        CacheStrategy::kLru, CacheStrategy::kGds}) {
    for (ResponseMode mode :
         {ResponseMode::kPathWeight, ResponseMode::kSigmoid,
          ResponseMode::kAlways}) {
      ExperimentConfig config = golden_config();
      config.strategy = strategy;
      config.response_mode = mode;

      config.sim.sim_engine = SimEngine::kFast;
      const ExperimentResult fast =
          run_experiment(trace, SchemeKind::kNclCache, config);

      config.sim.sim_engine = SimEngine::kReference;
      const ExperimentResult ref =
          run_experiment(trace, SchemeKind::kNclCache, config);

      SCOPED_TRACE(static_cast<int>(strategy) * 10 + static_cast<int>(mode));
      expect_results_identical(fast, ref);
    }
  }
}

TEST(EngineGolden, DynamicNclBitIdentical) {
  // Dynamic NCL re-selection re-homes cached copies and push tokens; the
  // fast path additionally maintains its central-count and central-bitmap
  // SoA state through the re-homing.
  const ContactTrace trace =
      generate_trace(infocom06_preset().with_duration(days(2)));
  ExperimentConfig config = golden_config();
  config.dynamic_ncl = true;
  config.sim.maintenance_interval = hours(6);

  config.sim.sim_engine = SimEngine::kFast;
  const ExperimentResult fast =
      run_experiment(trace, SchemeKind::kNclCache, config);

  config.sim.sim_engine = SimEngine::kReference;
  const ExperimentResult ref =
      run_experiment(trace, SchemeKind::kNclCache, config);

  expect_results_identical(fast, ref);
}

TEST(EngineGolden, SweepCsvByteIdenticalAcrossEngines) {
  const ContactTrace trace =
      generate_trace(infocom05_preset().with_duration(days(2)));

  SweepConfig config;
  config.base = golden_config();
  config.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  config.lifetimes = {hours(12), hours(18)};
  config.ncl_counts = {1, 2};

  config.base.sim.sim_engine = SimEngine::kFast;
  const std::string csv_fast = sweep_to_csv(run_sweep(trace, config));

  config.base.sim.sim_engine = SimEngine::kReference;
  const std::string csv_ref = sweep_to_csv(run_sweep(trace, config));

  EXPECT_EQ(csv_fast, csv_ref);
  EXPECT_FALSE(csv_fast.empty());
}

}  // namespace
}  // namespace dtn

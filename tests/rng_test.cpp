#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dtn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-10, -5);
    EXPECT_GE(x, -10);
    EXPECT_LE(x, -5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanForShapeAboveOne) {
  Rng rng(31);
  const double x_m = 1.0, alpha = 3.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(x_m, alpha);
  // E[X] = alpha x_m / (alpha - 1) = 1.5
  EXPECT_NEAR(sum / n, 1.5, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(47);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(51);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace dtn

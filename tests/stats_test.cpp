#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace dtn {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Gini, UniformIsZero) {
  EXPECT_NEAR(gini({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(Gini, SingleHolderApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 1.0;
  EXPECT_GT(gini(v), 0.98);
}

TEST(Gini, KnownValue) {
  // For {1, 3}: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
  EXPECT_NEAR(gini({1.0, 3.0}), 0.25, 1e-12);
}

TEST(Gini, EmptyAndZeroSafe) {
  EXPECT_EQ(gini({}), 0.0);
  EXPECT_EQ(gini({0.0, 0.0}), 0.0);
}

TEST(Gini, ScaleInvariant) {
  std::vector<double> v{1.0, 2.0, 7.0, 4.0};
  std::vector<double> scaled{10.0, 20.0, 70.0, 40.0};
  EXPECT_NEAR(gini(v), gini(scaled), 1e-12);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(4), 10.0);
}

TEST(Histogram, CountsFallIntoCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, ToStringContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find(" 2"), std::string::npos);
  EXPECT_NE(s.find(" 1"), std::string::npos);
}

}  // namespace
}  // namespace dtn

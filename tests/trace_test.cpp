#include "trace/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dtn {
namespace {

ContactEvent make(Time start, NodeId a, NodeId b, Time dur = 10.0) {
  ContactEvent e;
  e.start = start;
  e.duration = dur;
  e.a = a;
  e.b = b;
  return e;
}

TEST(ContactEvent, EndTime) {
  const ContactEvent e = make(100.0, 0, 1, 25.0);
  EXPECT_DOUBLE_EQ(e.end(), 125.0);
}

TEST(ContactEventOrder, SortsByStartThenIds) {
  ContactEventOrder less;
  EXPECT_TRUE(less(make(1.0, 0, 1), make(2.0, 0, 1)));
  EXPECT_TRUE(less(make(1.0, 0, 1), make(1.0, 0, 2)));
  EXPECT_TRUE(less(make(1.0, 0, 2), make(1.0, 1, 2)));
  EXPECT_FALSE(less(make(1.0, 0, 1), make(1.0, 0, 1)));
}

TEST(ContactTrace, SortsEventsOnConstruction) {
  ContactTrace trace(3, {make(5.0, 0, 1), make(1.0, 1, 2), make(3.0, 0, 2)});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.events()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(trace.events()[1].start, 3.0);
  EXPECT_DOUBLE_EQ(trace.events()[2].start, 5.0);
}

TEST(ContactTrace, CanonicalizesPairOrder) {
  ContactTrace trace(3, {make(1.0, 2, 0)});
  EXPECT_EQ(trace.events()[0].a, 0);
  EXPECT_EQ(trace.events()[0].b, 2);
}

TEST(ContactTrace, RejectsSelfContact) {
  EXPECT_THROW(ContactTrace(3, {make(1.0, 1, 1)}), std::invalid_argument);
}

TEST(ContactTrace, RejectsOutOfRangeNode) {
  EXPECT_THROW(ContactTrace(2, {make(1.0, 0, 2)}), std::invalid_argument);
  EXPECT_THROW(ContactTrace(2, {make(1.0, -1, 1)}), std::invalid_argument);
}

TEST(ContactTrace, RejectsNegativeDuration) {
  EXPECT_THROW(ContactTrace(2, {make(1.0, 0, 1, -5.0)}), std::invalid_argument);
}

TEST(ContactTrace, EmptyTraceTimes) {
  ContactTrace trace(4, {});
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(trace.end_time(), 0.0);
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
}

TEST(ContactTrace, EndTimeCoversLongRunningContact) {
  // The last-starting contact is not the last-ending one.
  ContactTrace trace(3, {make(0.0, 0, 1, 1000.0), make(10.0, 1, 2, 5.0)});
  EXPECT_DOUBLE_EQ(trace.end_time(), 1000.0);
}

TEST(ContactTrace, SliceFiltersByStartTime) {
  ContactTrace trace(3, {make(1.0, 0, 1), make(5.0, 1, 2), make(9.0, 0, 2)});
  const ContactTrace mid = trace.slice(2.0, 9.0);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_DOUBLE_EQ(mid.events()[0].start, 5.0);
  EXPECT_EQ(mid.node_count(), 3);
  EXPECT_EQ(mid.name(), trace.name());
}

TEST(ContactTrace, SliceBoundariesAreHalfOpen) {
  ContactTrace trace(3, {make(2.0, 0, 1), make(4.0, 1, 2)});
  const ContactTrace s = trace.slice(2.0, 4.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.events()[0].start, 2.0);
}

TEST(Summarize, CountsAndDuration) {
  ContactTrace trace(3,
                     {make(0.0, 0, 1), make(86400.0, 0, 1), make(43200.0, 1, 2)},
                     "t");
  const TraceSummary s = summarize(trace);
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.devices, 3);
  EXPECT_EQ(s.internal_contacts, 3u);
  EXPECT_NEAR(s.duration_days, 1.0, 1e-2);
  // 2 of 3 possible pairs met.
  EXPECT_NEAR(s.pair_coverage, 2.0 / 3.0, 1e-12);
  // 3 contacts / 2 met pairs / ~1 day
  EXPECT_NEAR(s.pairwise_contact_frequency_per_day, 1.5, 0.01);
}

TEST(Summarize, EmptyTraceIsSafe) {
  const TraceSummary s = summarize(ContactTrace(5, {}));
  EXPECT_EQ(s.internal_contacts, 0u);
  EXPECT_EQ(s.pairwise_contact_frequency_per_day, 0.0);
  EXPECT_EQ(s.pair_coverage, 0.0);
}

}  // namespace
}  // namespace dtn

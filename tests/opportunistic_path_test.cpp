#include "graph/opportunistic_path.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "graph/hypoexp.h"

namespace dtn {
namespace {

ContactGraph line_graph(int n, double rate) {
  ContactGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.set_rate(i, i + 1, rate);
  return g;
}

TEST(OpportunisticPath, RootHasWeightOne) {
  const ContactGraph g = line_graph(3, 1.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 1.0);
  EXPECT_DOUBLE_EQ(t.weight(0), 1.0);
  EXPECT_EQ(t.entry(0).hops, 0);
  EXPECT_EQ(t.root(), 0);
}

TEST(OpportunisticPath, DirectNeighborIsExponentialCdf) {
  const ContactGraph g = line_graph(2, 0.5);
  const PathTable t = compute_opportunistic_paths(g, 0, 2.0);
  EXPECT_NEAR(t.weight(1), 1.0 - std::exp(-0.5 * 2.0), 1e-12);
  EXPECT_EQ(t.entry(1).hops, 1);
  EXPECT_EQ(t.entry(1).next_hop, 0);
}

TEST(OpportunisticPath, TwoHopWeightIsHypoexp) {
  const ContactGraph g = line_graph(3, 1.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 3.0);
  EXPECT_NEAR(t.weight(2), hypoexp_cdf({1.0, 1.0}, 3.0), 1e-12);
  EXPECT_EQ(t.entry(2).hops, 2);
}

TEST(OpportunisticPath, UnreachableNodeHasZeroWeight) {
  ContactGraph g(4);
  g.set_rate(0, 1, 1.0);
  // Nodes 2 and 3 are isolated from 0.
  g.set_rate(2, 3, 1.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 1.0);
  EXPECT_EQ(t.weight(2), 0.0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_TRUE(t.path_to_root(2).empty());
}

TEST(OpportunisticPath, PrefersStrongIndirectOverWeakDirect) {
  ContactGraph g(3);
  g.set_rate(0, 2, 0.001);  // weak direct link
  g.set_rate(0, 1, 10.0);   // strong two-hop route
  g.set_rate(1, 2, 10.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 1.0);
  EXPECT_EQ(t.entry(2).hops, 2);
  EXPECT_EQ(t.entry(2).next_hop, 1);
  EXPECT_GT(t.weight(2), hypoexp_cdf({0.001}, 1.0));
}

TEST(OpportunisticPath, PrefersDirectOverWeakIndirect) {
  ContactGraph g(3);
  g.set_rate(0, 2, 5.0);
  g.set_rate(0, 1, 0.01);
  g.set_rate(1, 2, 0.01);
  const PathTable t = compute_opportunistic_paths(g, 0, 1.0);
  EXPECT_EQ(t.entry(2).hops, 1);
}

TEST(OpportunisticPath, PathReconstructionFollowsNextHops) {
  const ContactGraph g = line_graph(5, 2.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 10.0);
  const std::vector<NodeId> path = t.path_to_root(4);
  const std::vector<NodeId> expected{4, 3, 2, 1, 0};
  EXPECT_EQ(path, expected);
}

TEST(OpportunisticPath, MaxHopsLimitsReach) {
  const ContactGraph g = line_graph(6, 5.0);
  const PathTable t = compute_opportunistic_paths(g, 0, 100.0, /*max_hops=*/2);
  EXPECT_GT(t.weight(2), 0.0);
  EXPECT_EQ(t.weight(3), 0.0);
}

TEST(OpportunisticPath, RatesVectorMatchesPath) {
  ContactGraph g(3);
  g.set_rate(0, 1, 0.7);
  g.set_rate(1, 2, 1.3);
  const PathTable t = compute_opportunistic_paths(g, 0, 2.0);
  const std::vector<double> rates = t.rates(2);
  ASSERT_EQ(rates.size(), 2u);
  // Rates accumulate from the root outward.
  EXPECT_DOUBLE_EQ(rates[0], 0.7);
  EXPECT_DOUBLE_EQ(rates[1], 1.3);
  // The entry itself stores only the final stage; the chain above comes
  // from the parent-chain walk.
  EXPECT_DOUBLE_EQ(t.entry(2).last_rate, 1.3);
}

TEST(OpportunisticPath, InvalidArguments) {
  const ContactGraph g = line_graph(3, 1.0);
  EXPECT_THROW(compute_opportunistic_paths(g, -1, 1.0), std::invalid_argument);
  EXPECT_THROW(compute_opportunistic_paths(g, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(compute_opportunistic_paths(g, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(compute_opportunistic_paths(g, 0, 1.0, 0), std::invalid_argument);
}

TEST(OpportunisticPath, ApproximateSymmetryOnUndirectedGraph) {
  // The path weight is not edge-decomposable, so label-setting is a greedy
  // construction: the tree rooted at A and the tree rooted at B may pick
  // slightly different paths for the same pair. Directional weights must
  // nevertheless agree closely on an undirected graph.
  Rng rng(21);
  ContactGraph g(8);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) {
      if (rng.bernoulli(0.5)) g.set_rate(i, j, rng.uniform(0.1, 3.0));
    }
  }
  for (NodeId root = 0; root < 8; ++root) {
    const PathTable t = compute_opportunistic_paths(g, root, 1.5);
    for (NodeId other = 0; other < 8; ++other) {
      const PathTable back = compute_opportunistic_paths(g, other, 1.5);
      EXPECT_NEAR(t.weight(other), back.weight(root), 0.05)
          << root << "<->" << other;
    }
  }
}

// Property: the greedy label-setting construction matches brute-force
// enumeration on random small graphs.
class DijkstraVsBruteForce : public testing::TestWithParam<int> {};

TEST_P(DijkstraVsBruteForce, MatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const NodeId n = 6;
  ContactGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.6)) g.set_rate(i, j, rng.uniform(0.05, 4.0));
    }
  }
  const double horizon = 2.0;
  const PathTable t = compute_opportunistic_paths(g, 0, horizon, 5);
  for (NodeId dest = 1; dest < n; ++dest) {
    const double exact = brute_force_best_weight(g, dest, 0, horizon, 5);
    // Label-setting is the standard greedy construction in this literature;
    // it should match the exact optimum on these sizes (and must never
    // exceed it).
    EXPECT_LE(t.weight(dest), exact + 1e-9);
    EXPECT_NEAR(t.weight(dest), exact, 0.02) << "dest=" << dest;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraVsBruteForce,
                         testing::Range(0, 20));

}  // namespace
}  // namespace dtn

#include <gtest/gtest.h>

#include "baselines/bundle_cache.h"
#include "baselines/cache_data.h"
#include "baselines/no_cache.h"
#include "baselines/random_cache.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"

namespace dtn {
namespace {

/// Line 0 - 1 - 2 - 3 driven manually, mirroring the NCL scheme tests.
class BaselinesTest : public testing::Test {
 protected:
  BaselinesTest() : rng_(17), services_(registry_, rng_, metrics_) {
    ContactGraph graph(4);
    graph.set_rate(0, 1, 1.0 / 600.0);
    graph.set_rate(1, 2, 1.0 / 600.0);
    graph.set_rate(2, 3, 1.0 / 600.0);
    services_.set_paths(AllPairsPaths(graph, hours(1)));
    services_.set_now(0.0);
  }

  FloodingConfig flooding_config(Bytes buffer = 1000) {
    FloodingConfig c;
    c.buffer_capacity.assign(4, buffer);
    return c;
  }

  DataItem add_data(NodeId source, Bytes size = 100, Time expires = 1e9) {
    DataItem item;
    item.source = source;
    item.created = services_.now();
    item.expires = expires;
    item.size = size;
    const DataId id = registry_.add(item);
    return registry_.get(id);
  }

  Query make_query(NodeId requester, DataId data, Time t_q = 1e6) {
    Query q;
    q.id = next_query_++;
    q.requester = requester;
    q.data = data;
    q.issued = services_.now();
    q.expires = services_.now() + t_q;
    metrics_.on_query_issued(q);
    return q;
  }

  void contact(Scheme& scheme, NodeId a, NodeId b, Bytes budget = 1 << 30) {
    LinkBudget link(budget);
    scheme.on_contact(services_, a, b, link);
  }

  /// Drives the query from node 3 to the source at node 0 and the response
  /// back, along the line.
  void pump_line(Scheme& scheme) {
    contact(scheme, 3, 2);
    contact(scheme, 2, 1);
    contact(scheme, 1, 0);
    contact(scheme, 0, 1);
    contact(scheme, 1, 2);
    contact(scheme, 2, 3);
  }

  DataRegistry registry_;
  Rng rng_;
  MetricsCollector metrics_;
  SimServices services_;
  QueryId next_query_ = 0;
};

TEST_F(BaselinesTest, ConfigValidation) {
  FloodingConfig c;  // empty buffers
  EXPECT_THROW(NoCacheScheme{c}, std::invalid_argument);
  c = flooding_config();
  c.buffer_capacity[0] = -1;
  EXPECT_THROW(NoCacheScheme{c}, std::invalid_argument);
}

TEST_F(BaselinesTest, NoCacheSourceAnswersQuery) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);

  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  pump_line(scheme);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
  EXPECT_EQ(scheme.cached_copies(0.0), 0u);  // never caches
}

TEST_F(BaselinesTest, NoCacheLocalNativeHit) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(2, item.id);
  scheme.on_query(services_, q);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

TEST_F(BaselinesTest, RandomCacheCachesAtRequester) {
  RandomCacheScheme scheme(flooding_config());
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);

  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  pump_line(scheme);
  ASSERT_EQ(metrics_.queries_satisfied(), 1u);
  EXPECT_TRUE(scheme.node_caches(3, item.id));
  EXPECT_EQ(scheme.cached_copies(0.0), 1u);

  // A second requester near node 3 can now be served from the cache.
  const Query q2 = make_query(2, item.id);
  scheme.on_query(services_, q2);
  contact(scheme, 2, 3);  // flooded copy reaches the caching node 3
  contact(scheme, 3, 2);  // response returns
  EXPECT_EQ(metrics_.queries_satisfied(), 2u);
}

TEST_F(BaselinesTest, RandomCacheEvictsLruWhenFull) {
  RandomCacheScheme scheme(flooding_config(/*buffer=*/150));
  const DataItem a = add_data(0);
  const DataItem b = add_data(1);
  scheme.on_data_generated(services_, a);
  scheme.on_data_generated(services_, b);

  const Query qa = make_query(3, a.id);
  scheme.on_query(services_, qa);
  pump_line(scheme);
  ASSERT_TRUE(scheme.node_caches(3, a.id));

  services_.set_now(100.0);
  const Query qb = make_query(3, b.id);
  scheme.on_query(services_, qb);
  contact(scheme, 3, 2);
  contact(scheme, 2, 1);
  contact(scheme, 1, 2);
  contact(scheme, 2, 3);
  ASSERT_TRUE(scheme.node_caches(3, b.id));
  EXPECT_FALSE(scheme.node_caches(3, a.id));  // LRU victim
  EXPECT_GE(scheme.evictions(), 1u);
}

TEST_F(BaselinesTest, CacheDataRelaysCachePassByData) {
  CacheDataScheme scheme(flooding_config());
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);

  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  pump_line(scheme);
  ASSERT_EQ(metrics_.queries_satisfied(), 1u);
  // The response travelled 0 -> 1 -> 2 -> 3: relays 1 and 2 cached it.
  EXPECT_TRUE(scheme.node_caches(1, item.id) || scheme.node_caches(2, item.id));
}

TEST_F(BaselinesTest, BundleCacheRequiresCentralityKnowledge) {
  BundleCacheConfig config;
  config.flooding = flooding_config();
  BundleCacheScheme scheme(config);
  // Before any maintenance tick the scheme has no centrality estimates and
  // must not cache anything.
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  pump_line(scheme);
  EXPECT_EQ(scheme.cached_copies(0.0), 0u);
}

TEST_F(BaselinesTest, BundleCacheCachesAtCentralNodesOnly) {
  BundleCacheConfig config;
  config.flooding = flooding_config();
  config.centrality_admission_fraction = 0.9;  // only the most central
  BundleCacheScheme scheme(config);
  scheme.on_maintenance(services_);  // learn centralities from paths

  // On the line, nodes 1 and 2 are the most central.
  EXPECT_GT(scheme.centrality(1), scheme.centrality(0));
  EXPECT_GT(scheme.centrality(2), scheme.centrality(3));

  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  pump_line(scheme);
  ASSERT_EQ(metrics_.queries_satisfied(), 1u);
  // Node 3 (an end of the line) is not central: never caches.
  EXPECT_FALSE(scheme.node_caches(3, item.id));
  EXPECT_FALSE(scheme.node_caches(0, item.id));
}

TEST_F(BaselinesTest, QueryRidesGradientTowardsSource) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);

  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  // A contact away from the source must not move the query.
  contact(scheme, 3, 2);  // towards source: moves to 2
  contact(scheme, 2, 3);  // back towards 3: must NOT move
  contact(scheme, 2, 1);  // onward to 1
  contact(scheme, 1, 0);  // reaches the source; response generated
  contact(scheme, 0, 1);
  contact(scheme, 1, 2);
  contact(scheme, 2, 3);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

TEST_F(BaselinesTest, DirectContactWithHolderShortCircuits) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  // Node 3 meets the source directly: answered on the spot.
  contact(scheme, 3, 2);
  contact(scheme, 2, 3);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

TEST_F(BaselinesTest, ExpiredDataNotServed) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(0, 100, /*expires=*/50.0);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);
  services_.set_now(100.0);  // data expired
  pump_line(scheme);
  EXPECT_EQ(metrics_.queries_satisfied(), 0u);
}

TEST_F(BaselinesTest, QueryBudgetExhaustionBlocksFlooding) {
  NoCacheScheme scheme(flooding_config());
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(1, item.id);
  scheme.on_query(services_, q);
  contact(scheme, 1, 0, /*budget=*/0);  // no bytes: nothing moves
  EXPECT_EQ(metrics_.queries_satisfied(), 0u);
  contact(scheme, 1, 0);  // retry with budget
  contact(scheme, 0, 1);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

}  // namespace
}  // namespace dtn

#include "cache/response.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dtn {
namespace {

TEST(SigmoidResponse, AnchorsAtPminAndPmax) {
  SigmoidResponse s;  // defaults: p_min = 0.45, p_max = 0.8
  const Time t_q = hours(10);
  EXPECT_NEAR(s.probability(0.0, t_q), 0.45, 1e-9);
  EXPECT_NEAR(s.probability(t_q, t_q), 0.8, 1e-9);
}

TEST(SigmoidResponse, MonotoneIncreasingInRemainingTime) {
  SigmoidResponse s;
  const Time t_q = hours(10);
  double prev = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double p = s.probability(f * t_q, t_q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SigmoidResponse, BoundedByPminAndPmax) {
  SigmoidResponse s;
  const Time t_q = hours(5);
  for (double f = 0.0; f <= 1.0; f += 0.01) {
    const double p = s.probability(f * t_q, t_q);
    EXPECT_GE(p, 0.45 - 1e-9);
    EXPECT_LE(p, 0.8 + 1e-9);
  }
}

TEST(SigmoidResponse, ClampsOutOfRangeTimes) {
  SigmoidResponse s;
  const Time t_q = hours(10);
  EXPECT_NEAR(s.probability(-5.0, t_q), s.probability(0.0, t_q), 1e-12);
  EXPECT_NEAR(s.probability(2 * t_q, t_q), s.probability(t_q, t_q), 1e-12);
}

TEST(SigmoidResponse, PaperExampleFigure7) {
  // Fig. 7 uses p_min = 0.45, p_max = 0.8, T_q = 10 h. At the midpoint the
  // sigmoid must be strictly between its anchors.
  SigmoidResponse s{0.45, 0.8};
  const double mid = s.probability(hours(5), hours(10));
  EXPECT_GT(mid, 0.45);
  EXPECT_LT(mid, 0.8);
}

TEST(SigmoidResponse, CustomParameters) {
  SigmoidResponse s{0.6, 1.0};
  const Time t_q = 100.0;
  EXPECT_NEAR(s.probability(0.0, t_q), 0.6, 1e-9);
  EXPECT_NEAR(s.probability(t_q, t_q), 1.0, 1e-9);
}

TEST(SigmoidResponse, InvalidParametersThrow) {
  // p_min <= p_max / 2 makes k2 undefined (Eq. 4 validity region).
  SigmoidResponse bad1{0.4, 0.8};
  EXPECT_THROW(bad1.probability(1.0, 10.0), std::invalid_argument);
  // p_min >= p_max.
  SigmoidResponse bad2{0.9, 0.8};
  EXPECT_THROW(bad2.probability(1.0, 10.0), std::invalid_argument);
  // p_max out of range.
  SigmoidResponse bad3{0.6, 1.1};
  EXPECT_THROW(bad3.probability(1.0, 10.0), std::invalid_argument);
  // T_q must be positive.
  SigmoidResponse good;
  EXPECT_THROW(good.probability(1.0, 0.0), std::invalid_argument);
}

// Parameter sweep: anchors hold across the validity region.
class SigmoidSweep
    : public testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SigmoidSweep, AnchorsHold) {
  const auto [p_min, p_max] = GetParam();
  SigmoidResponse s{p_min, p_max};
  const Time t_q = 3600.0;
  EXPECT_NEAR(s.probability(0.0, t_q), p_min, 1e-9);
  EXPECT_NEAR(s.probability(t_q, t_q), p_max, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ValidRegion, SigmoidSweep,
    testing::Values(std::make_pair(0.45, 0.8), std::make_pair(0.55, 0.9),
                    std::make_pair(0.51, 1.0), std::make_pair(0.35, 0.6),
                    std::make_pair(0.2, 0.3)));

}  // namespace
}  // namespace dtn

#include "cache/ncl_scheme.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/all_pairs.h"
#include "graph/contact_graph.h"

namespace dtn {
namespace {

/// Test fixture: a 4-node line 0 - 1 - 2 - 3 with unit contact rates; node 3
/// (or 2) serves as the central node. SimServices is driven manually so each
/// protocol step can be asserted in isolation.
class NclSchemeTest : public testing::Test {
 protected:
  NclSchemeTest() : rng_(7), services_(registry_, rng_, metrics_) {
    ContactGraph graph(4);
    graph.set_rate(0, 1, 1.0 / 600.0);
    graph.set_rate(1, 2, 1.0 / 600.0);
    graph.set_rate(2, 3, 1.0 / 600.0);
    services_.set_paths(AllPairsPaths(graph, hours(1)));
    services_.set_now(0.0);
  }

  NclSchemeConfig config(NodeId central, Bytes buffer = 1000) {
    NclSchemeConfig c;
    c.central_nodes = {central};
    c.buffer_capacity.assign(4, buffer);
    c.response_mode = ResponseMode::kAlways;
    return c;
  }

  DataItem add_data(NodeId source, Bytes size = 100, Time expires = 1e9) {
    DataItem item;
    item.source = source;
    item.created = services_.now();
    item.expires = expires;
    item.size = size;
    const DataId id = registry_.add(item);
    return registry_.get(id);
  }

  Query make_query(NodeId requester, DataId data, Time t_q = 1e6) {
    Query q;
    q.id = next_query_++;
    q.requester = requester;
    q.data = data;
    q.issued = services_.now();
    q.expires = services_.now() + t_q;
    metrics_.on_query_issued(q);
    return q;
  }

  void contact(NclCachingScheme& scheme, NodeId a, NodeId b,
               Bytes budget_bytes = 1 << 30) {
    LinkBudget budget(budget_bytes);
    scheme.on_contact(services_, a, b, budget);
  }

  DataRegistry registry_;
  Rng rng_;
  MetricsCollector metrics_;
  SimServices services_;
  QueryId next_query_ = 0;
};

TEST_F(NclSchemeTest, ConstructorValidation) {
  NclSchemeConfig c = config(2);
  c.central_nodes.clear();
  EXPECT_THROW(NclCachingScheme{c}, std::invalid_argument);
  c = config(2);
  c.buffer_capacity.clear();
  EXPECT_THROW(NclCachingScheme{c}, std::invalid_argument);
  c = config(2);
  c.central_nodes = {7};
  EXPECT_THROW(NclCachingScheme{c}, std::invalid_argument);
  c = config(2);
  c.buffer_capacity[1] = -1;
  EXPECT_THROW(NclCachingScheme{c}, std::invalid_argument);
}

TEST_F(NclSchemeTest, PushCreatesTokensPerCentral) {
  NclSchemeConfig c = config(2);
  c.central_nodes = {2, 3};
  NclCachingScheme scheme(c);
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  EXPECT_EQ(scheme.push_tokens_in_flight(), 2u);
}

TEST_F(NclSchemeTest, PushRidesGradientAndSettlesAtCentral) {
  NclCachingScheme scheme(config(3));
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);

  contact(scheme, 0, 1);  // token hops to 1, cached there in transit
  EXPECT_TRUE(scheme.node_caches(1, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 1u);

  contact(scheme, 1, 2);
  EXPECT_TRUE(scheme.node_caches(2, item.id));
  EXPECT_FALSE(scheme.node_caches(1, item.id));  // relay deleted its copy

  contact(scheme, 2, 3);
  EXPECT_TRUE(scheme.node_caches(3, item.id));  // settled at the central
  EXPECT_FALSE(scheme.node_caches(2, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 0u);
  EXPECT_EQ(scheme.cached_copies(services_.now()), 1u);
}

TEST_F(NclSchemeTest, PushDoesNotMoveAgainstGradient) {
  NclCachingScheme scheme(config(3));
  const DataItem item = add_data(1);
  scheme.on_data_generated(services_, item);
  contact(scheme, 1, 0);  // away from central: token must stay at 1
  EXPECT_FALSE(scheme.node_caches(0, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 1u);
}

TEST_F(NclSchemeTest, PushStopsWhenNextBufferFull) {
  NclSchemeConfig c = config(3);
  c.buffer_capacity[3] = 10;  // central cannot hold the 100-byte item
  NclCachingScheme scheme(c);
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);

  contact(scheme, 2, 3);
  // Forwarding stopped: the copy stays cached at the current relay (the
  // source), which becomes a caching node of this NCL (Fig. 5). The token
  // keeps waiting for a relay with space.
  EXPECT_FALSE(scheme.node_caches(3, item.id));
  EXPECT_TRUE(scheme.node_caches(2, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 1u);
  EXPECT_GE(scheme.counters().tokens_stopped_full, 1u);

  // Once the central frees space (here: a bigger budget won't help, but a
  // fresh scheme with room would accept), the copy can still migrate; at
  // minimum it remains queryable where it parked.
  contact(scheme, 2, 3);
  EXPECT_TRUE(scheme.node_caches(2, item.id));
}

TEST_F(NclSchemeTest, PushRespectsLinkBudget) {
  NclCachingScheme scheme(config(3));
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);
  contact(scheme, 2, 3, /*budget=*/10);  // too small for 100 bytes
  EXPECT_FALSE(scheme.node_caches(3, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 1u);  // retries later
  contact(scheme, 2, 3);
  EXPECT_TRUE(scheme.node_caches(3, item.id));
}

TEST_F(NclSchemeTest, SourceAsCentralCachesImmediately) {
  NclCachingScheme scheme(config(2));
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);
  EXPECT_TRUE(scheme.node_caches(2, item.id));
  EXPECT_EQ(scheme.push_tokens_in_flight(), 0u);
}

TEST_F(NclSchemeTest, QueryLocalHitDeliversImmediately) {
  NclCachingScheme scheme(config(2));
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);  // cached at 2 (source=central)

  // Another data copy query from node 2 itself: it caches the data.
  const Query q = make_query(2, item.id);
  scheme.on_query(services_, q);
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

TEST_F(NclSchemeTest, FullPullRoundTrip) {
  NclCachingScheme scheme(config(2));
  const DataItem item = add_data(2);  // central is the source: settled copy
  scheme.on_data_generated(services_, item);

  const Query q = make_query(0, item.id);
  scheme.on_query(services_, q);

  contact(scheme, 0, 1);  // query copy rides towards central
  contact(scheme, 1, 2);  // reaches central; response generated (kAlways)
  EXPECT_GE(scheme.responses_sent(), 1u);
  contact(scheme, 2, 1);  // response rides back
  contact(scheme, 1, 0);  // delivered
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
  EXPECT_GT(metrics_.mean_delay(), -1e-9);
}

TEST_F(NclSchemeTest, ExpiredQueryNotServed) {
  NclCachingScheme scheme(config(2));
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);

  const Query q = make_query(0, item.id, /*t_q=*/100.0);
  scheme.on_query(services_, q);
  services_.set_now(200.0);  // past expiry
  contact(scheme, 0, 1);
  contact(scheme, 1, 2);
  EXPECT_EQ(scheme.responses_sent(), 0u);
  EXPECT_EQ(metrics_.queries_satisfied(), 0u);
}

TEST_F(NclSchemeTest, ExpiredDataPrunedFromCaches) {
  NclCachingScheme scheme(config(3));
  const DataItem item = add_data(0, 100, /*expires=*/500.0);
  scheme.on_data_generated(services_, item);
  contact(scheme, 0, 1);
  EXPECT_TRUE(scheme.node_caches(1, item.id));

  services_.set_now(1000.0);
  scheme.on_maintenance(services_);
  EXPECT_FALSE(scheme.node_caches(1, item.id));
  EXPECT_EQ(scheme.cached_copies(1000.0), 0u);
}

TEST_F(NclSchemeTest, ResponderOnRouteAnswersQuery) {
  // Data cached mid-route (at node 1); a query from node 0 towards central 3
  // must be answered by node 1 when the routed copy passes through it.
  NclSchemeConfig c = config(3);
  c.buffer_capacity[2] = 10;  // push from 0 stalls below node 2
  c.buffer_capacity[3] = 10;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  contact(scheme, 0, 1);
  contact(scheme, 1, 2);  // 2 cannot cache: item stays at 1
  EXPECT_TRUE(scheme.node_caches(1, item.id));

  const Query q = make_query(0, item.id);
  scheme.on_query(services_, q);
  contact(scheme, 0, 1);  // query reaches node 1, which holds the data
  EXPECT_GE(scheme.responses_sent(), 1u);
  contact(scheme, 1, 0);  // response handed straight back
  EXPECT_EQ(metrics_.queries_satisfied(), 1u);
}

TEST_F(NclSchemeTest, ReplacementMigratesPopularDataTowardsCentral) {
  NclSchemeConfig c = config(3, /*buffer=*/100);  // each node: one item
  c.replacement.probabilistic = false;            // deterministic for assertion
  NclCachingScheme scheme(c);

  // Item X cached at node 2 (near central), item Y at node 1; Y is hot.
  const DataItem x = add_data(2);
  const DataItem y = add_data(0);
  scheme.on_data_generated(services_, x);  // token 2->3
  scheme.on_data_generated(services_, y);  // token 0->..->3
  contact(scheme, 0, 1);                   // y cached at 1
  ASSERT_TRUE(scheme.node_caches(1, y.id));

  // Make y popular via queries seen at node 1 and x unpopular.
  services_.set_now(100.0);
  for (int i = 0; i < 5; ++i) {
    const Query q = make_query(0, y.id);
    scheme.on_query(services_, q);
    services_.set_now(services_.now() + 50.0);
    contact(scheme, 0, 1);  // node 1 sees the queries (and responds)
  }

  // Now 1 and 2 meet: the hot item y should end up at node 2 (higher path
  // weight to central 3); x (popularity 0) is left to node 1.
  contact(scheme, 1, 2);
  EXPECT_TRUE(scheme.node_caches(2, y.id));
  EXPECT_GE(scheme.replacement_exchanges(), 1u);
}

TEST_F(NclSchemeTest, ReplacementDisabledKeepsDataInPlace) {
  NclSchemeConfig c = config(3, 100);
  c.enable_replacement = false;
  NclCachingScheme scheme(c);
  const DataItem y = add_data(0);
  scheme.on_data_generated(services_, y);
  contact(scheme, 0, 1);
  ASSERT_TRUE(scheme.node_caches(1, y.id));
  EXPECT_EQ(scheme.replacement_exchanges(), 0u);
}

TEST_F(NclSchemeTest, CachedCopiesCountsEntriesNotNatives) {
  NclCachingScheme scheme(config(3));
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  // Nothing cached yet: the source's native copy does not count.
  EXPECT_EQ(scheme.cached_copies(0.0), 0u);
  contact(scheme, 0, 1);
  EXPECT_EQ(scheme.cached_copies(0.0), 1u);
  EXPECT_EQ(scheme.cached_bytes(0.0), 100);
}

TEST_F(NclSchemeTest, SigmoidResponseModeRespondsWithinBounds) {
  NclSchemeConfig c = config(2);
  c.response_mode = ResponseMode::kSigmoid;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);

  // Many queries: the response frequency must land between p_min and p_max.
  int responses = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const Query q = make_query(0, item.id);
    scheme.on_query(services_, q);
    const auto before = scheme.responses_sent();
    contact(scheme, 0, 1);
    contact(scheme, 1, 2);
    responses += static_cast<int>(scheme.responses_sent() - before);
  }
  const double frequency = static_cast<double>(responses) / trials;
  EXPECT_GT(frequency, 0.3);
  EXPECT_LT(frequency, 0.95);
}

TEST_F(NclSchemeTest, PathWeightResponseModeUsesRemainingTime) {
  NclSchemeConfig c = config(2);
  c.response_mode = ResponseMode::kPathWeight;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);

  // Queries with an enormous time budget: p_CR ~ 1, always respond.
  int responses = 0;
  for (int i = 0; i < 50; ++i) {
    const Query q = make_query(0, item.id, /*t_q=*/1e8);
    scheme.on_query(services_, q);
    const auto before = scheme.responses_sent();
    contact(scheme, 0, 1);
    contact(scheme, 1, 2);
    responses += static_cast<int>(scheme.responses_sent() - before);
  }
  EXPECT_EQ(responses, 50);
}

TEST_F(NclSchemeTest, FifoStrategyEvictsOldestOnPush) {
  NclSchemeConfig c = config(3, /*buffer=*/150);  // fits one 100-byte item
  c.strategy = CacheStrategy::kFifo;
  NclCachingScheme scheme(c);

  const DataItem first = add_data(2);
  scheme.on_data_generated(services_, first);
  contact(scheme, 2, 3);
  ASSERT_TRUE(scheme.node_caches(3, first.id));

  services_.set_now(100.0);
  const DataItem second = add_data(2);
  scheme.on_data_generated(services_, second);
  contact(scheme, 2, 3);
  // FIFO evicted the older item to admit the newer one.
  EXPECT_TRUE(scheme.node_caches(3, second.id));
  EXPECT_FALSE(scheme.node_caches(3, first.id));
}

TEST_F(NclSchemeTest, UtilityStrategyDoesNotEvictOnPush) {
  NclSchemeConfig c = config(3, 150);
  c.strategy = CacheStrategy::kUtilityExchange;
  NclCachingScheme scheme(c);

  const DataItem first = add_data(2);
  scheme.on_data_generated(services_, first);
  contact(scheme, 2, 3);
  ASSERT_TRUE(scheme.node_caches(3, first.id));

  services_.set_now(100.0);
  const DataItem second = add_data(2);
  scheme.on_data_generated(services_, second);
  contact(scheme, 2, 3);
  // Push stops; the old item stays at the central.
  EXPECT_TRUE(scheme.node_caches(3, first.id));
}

TEST_F(NclSchemeTest, QueryBroadcastReachesNclMembers) {
  // Data parked at node 1 (a member of NCL 3, because node 2's buffer is
  // too small); the query arrives at central 3 first, then the broadcast
  // copy must find node 1 through the membership flooding.
  NclSchemeConfig c = config(3);
  c.buffer_capacity[2] = 10;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  contact(scheme, 0, 1);
  contact(scheme, 1, 2);  // blocked at 2: item stays cached at 1 (NCL 3)
  ASSERT_TRUE(scheme.node_caches(1, item.id));

  // A query from node 3's side: issued AT the central itself.
  const Query q = make_query(3, item.id);
  scheme.on_query(services_, q);  // requester==central: broadcast immediately
  EXPECT_EQ(scheme.responses_sent(), 0u);  // central has no copy

  // Node 2 holds no entry for NCL 3, so it is not a member: the broadcast
  // deliberately skips it — membership flooding is scoped to caching nodes.
  contact(scheme, 3, 2);
  EXPECT_EQ(scheme.responses_sent(), 0u);

  // When the member itself meets a broadcast carrier (here the central:
  // membership is about cache entries, not graph adjacency), the query
  // reaches it and the cached copy answers.
  contact(scheme, 3, 1);
  EXPECT_GE(scheme.responses_sent(), 1u);
}

TEST_F(NclSchemeTest, ReplacementRespectsLinkBudget) {
  // Two nodes with one cached item each (same NCL); a zero-byte budget
  // forbids any exchange move — both items must stay where they are.
  NclSchemeConfig c = config(3, /*buffer=*/200);
  c.replacement.probabilistic = false;
  NclCachingScheme scheme(c);
  const DataItem x = add_data(0);
  const DataItem y = add_data(2);
  scheme.on_data_generated(services_, x);
  scheme.on_data_generated(services_, y);
  contact(scheme, 0, 1);  // x cached at 1
  ASSERT_TRUE(scheme.node_caches(1, x.id));

  // Make x popular at node 1 so the exchange would want it at node 2.
  for (int i = 0; i < 4; ++i) {
    services_.set_now(services_.now() + 50.0);
    const Query q = make_query(0, x.id);
    scheme.on_query(services_, q);
    contact(scheme, 0, 1);
  }

  // Contact 1-2 with zero budget: no transfer possible.
  LinkBudget empty(0);
  scheme.on_contact(services_, 1, 2, empty);
  EXPECT_TRUE(scheme.node_caches(1, x.id));  // stayed: no budget to move
  EXPECT_TRUE(scheme.check_invariants(registry_));
}

TEST_F(NclSchemeTest, ResponsesNotDuplicatedPerQuery) {
  // A caching node decides once per query: repeated contacts with the
  // requester's relay must not mint additional response bundles.
  NclCachingScheme scheme(config(2));
  const DataItem item = add_data(2);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(0, item.id);
  scheme.on_query(services_, q);
  contact(scheme, 0, 1);
  contact(scheme, 1, 2);
  const auto after_first = scheme.responses_sent();
  EXPECT_EQ(after_first, 1u);
  contact(scheme, 1, 2);
  contact(scheme, 2, 1);
  EXPECT_EQ(scheme.responses_sent(), after_first);
}

TEST_F(NclSchemeTest, DynamicNclReselectsFromPathTables) {
  // Start with a deliberately bad central (node 0, an end of the line);
  // dynamic re-selection must promote a middle node.
  NclSchemeConfig c = config(0);
  c.dynamic_ncl = true;
  NclCachingScheme scheme(c);
  ASSERT_EQ(scheme.central_nodes().front(), 0);

  scheme.on_maintenance(services_);
  // On the line 0-1-2-3, nodes 1 and 2 are the best connected.
  const NodeId selected = scheme.central_nodes().front();
  EXPECT_TRUE(selected == 1 || selected == 2);
}

TEST_F(NclSchemeTest, StaticNclKeepsInitialSelection) {
  NclSchemeConfig c = config(0);
  c.dynamic_ncl = false;
  NclCachingScheme scheme(c);
  scheme.on_maintenance(services_);
  EXPECT_EQ(scheme.central_nodes().front(), 0);
}

TEST_F(NclSchemeTest, DuplicateCachedCopiesCollapseOnContact) {
  // Both nodes end up caching the same item; replacement dedups it.
  NclSchemeConfig c = config(3, 1000);
  c.replacement.probabilistic = false;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(0);
  scheme.on_data_generated(services_, item);
  contact(scheme, 0, 1);
  ASSERT_TRUE(scheme.node_caches(1, item.id));
  // Fake a duplicate: push a second token path through direct route 0->1?
  // Instead: node 2 also receives the item via push from 1, then we
  // manually re-create at 1 via another data generation cycle is not
  // possible — rely on replacement after forwarding: 1 -> 2 keeps exactly
  // one copy in the network.
  contact(scheme, 1, 2);
  EXPECT_EQ(scheme.cached_copies(0.0), 1u);
}

}  // namespace
}  // namespace dtn

// End-to-end golden fixtures: the full metrics table for every Table I
// trace preset across all five schemes, diffed byte-for-byte against CSVs
// checked in under tests/fixtures/golden/.
//
// engine_golden_test pins the fast engine against the in-tree reference;
// these fixtures pin both against *history* — any change to simulation
// output (scheme logic, RNG consumption, workload generation, CSV
// formatting) shows up as a byte diff here even if the two engines still
// agree with each other. Because the sweep's determinism contract makes
// the CSV byte-identical across thread counts and platforms, an exact
// string compare is the right strength.
//
// To regenerate after an *intentional* output change:
//   DTN_UPDATE_GOLDEN=1 ./build/tests/golden_test
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "experiment/experiment.h"
#include "experiment/sweep.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

std::string fixture_path(const std::string& preset_name) {
  return std::string(DTN_GOLDEN_FIXTURE_DIR) + "/" + preset_name + ".csv";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The golden scenario: a rate-preserving two-day slice of each preset, all
// five schemes, two repetitions. Mirrors engine_golden_test's config so
// the two suites exercise the same regime.
std::string golden_csv(const SyntheticTraceConfig& preset) {
  const ContactTrace trace = generate_trace(preset.with_duration(days(2)));

  SweepConfig config;
  config.base.avg_lifetime = hours(18);
  config.base.avg_data_size = megabits(40);
  config.base.ncl_count = 2;
  config.base.repetitions = 2;
  config.base.auto_horizon = false;
  config.base.sim.path_horizon = hours(4);
  config.base.sim.maintenance_interval = hours(12);
  config.base.seed = 77;
  config.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache,
                    SchemeKind::kRandomCache, SchemeKind::kCacheData,
                    SchemeKind::kBundleCache};
  return sweep_to_csv(run_sweep(trace, config));
}

class GoldenFixture : public ::testing::TestWithParam<int> {};

TEST_P(GoldenFixture, MetricsCsvMatchesCheckedInFixture) {
  const SyntheticTraceConfig preset = all_presets()[GetParam()];
  const std::string csv = golden_csv(preset);
  ASSERT_FALSE(csv.empty());
  const std::string path = fixture_path(preset.name);

  if (std::getenv("DTN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << csv;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "fixture regenerated: " << path;
  }

  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << "missing fixture " << path
      << " — regenerate with DTN_UPDATE_GOLDEN=1 ./tests/golden_test";
  EXPECT_EQ(csv, golden) << "simulation output drifted from " << path
                         << "; if intentional, regenerate with "
                            "DTN_UPDATE_GOLDEN=1 and review the diff";
}

INSTANTIATE_TEST_SUITE_P(AllPresets, GoldenFixture, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return all_presets()[tpi.param].name;
                         });

}  // namespace
}  // namespace dtn

// Failure-injection tests: missed contacts and node downtime degrade
// performance gracefully and deterministically.
#include <gtest/gtest.h>

#include "experiment/experiment.h"
#include "sim/engine.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

/// Scheme counting the contacts it sees.
class ContactCounter : public Scheme {
 public:
  std::string name() const override { return "counter"; }
  void on_data_generated(SimServices&, const DataItem&) override {}
  void on_query(SimServices&, const Query&) override {}
  void on_contact(SimServices&, NodeId a, NodeId b, LinkBudget&) override {
    ++contacts;
    (void)a;
    (void)b;
  }
  std::size_t cached_copies(Time) const override { return 0; }
  std::size_t contacts = 0;
};

ContactTrace tiny_trace() {
  SyntheticTraceConfig c;
  c.node_count = 10;
  c.duration = days(4);
  c.target_total_contacts = 2000;
  c.seed = 31;
  return generate_trace(c);
}

Workload tiny_workload(const ContactTrace& trace) {
  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = hours(12);
  wc.seed = 3;
  return generate_workload(wc, trace.node_count());
}

SimConfig base_sim() {
  SimConfig c;
  c.path_horizon = hours(6);
  c.maintenance_interval = hours(6);
  return c;
}

TEST(FailureInjection, ZeroMissProbIsNoOp) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter a, b;
  SimConfig config = base_sim();
  run_simulation(trace, workload, a, config);
  config.contact_miss_prob = 0.0;
  run_simulation(trace, workload, b, config);
  EXPECT_EQ(a.contacts, b.contacts);
}

TEST(FailureInjection, MissProbDropsContacts) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter baseline, lossy;
  SimConfig config = base_sim();
  run_simulation(trace, workload, baseline, config);
  config.contact_miss_prob = 0.5;
  run_simulation(trace, workload, lossy, config);
  EXPECT_LT(lossy.contacts, baseline.contacts);
  EXPECT_GT(lossy.contacts, 0u);
  // Roughly half survive.
  EXPECT_NEAR(static_cast<double>(lossy.contacts),
              0.5 * static_cast<double>(baseline.contacts),
              0.1 * static_cast<double>(baseline.contacts));
}

TEST(FailureInjection, MissProbOneDropsEverything) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter scheme;
  SimConfig config = base_sim();
  config.contact_miss_prob = 1.0;
  run_simulation(trace, workload, scheme, config);
  EXPECT_EQ(scheme.contacts, 0u);
}

TEST(FailureInjection, Deterministic) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter a, b;
  SimConfig config = base_sim();
  config.contact_miss_prob = 0.3;
  run_simulation(trace, workload, a, config);
  run_simulation(trace, workload, b, config);
  EXPECT_EQ(a.contacts, b.contacts);
}

TEST(FailureInjection, DowntimeBlocksNode) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter baseline, failed;
  SimConfig config = base_sim();
  run_simulation(trace, workload, baseline, config);
  // Node 0 down for the entire trace.
  config.node_downtime.push_back({0, 0.0, trace.end_time() + 1.0});
  run_simulation(trace, workload, failed, config);
  EXPECT_LT(failed.contacts, baseline.contacts);
}

TEST(FailureInjection, DowntimeOutsideWindowIsNoOp) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter baseline, shifted;
  SimConfig config = base_sim();
  run_simulation(trace, workload, baseline, config);
  config.node_downtime.push_back(
      {0, trace.end_time() + 100.0, trace.end_time() + 200.0});
  run_simulation(trace, workload, shifted, config);
  EXPECT_EQ(shifted.contacts, baseline.contacts);
}

TEST(FailureInjection, InvalidConfigThrows) {
  const ContactTrace trace = tiny_trace();
  const Workload workload = tiny_workload(trace);
  ContactCounter scheme;
  SimConfig config = base_sim();
  config.contact_miss_prob = 1.5;
  EXPECT_THROW(run_simulation(trace, workload, scheme, config),
               std::invalid_argument);
  config = base_sim();
  config.node_downtime.push_back({0, 10.0, 5.0});
  EXPECT_THROW(run_simulation(trace, workload, scheme, config),
               std::invalid_argument);
}

TEST(RandomDowntimes, RespectsParameters) {
  const auto downs = random_downtimes(20, days(10), 2.0, hours(5), 7);
  EXPECT_GT(downs.size(), 10u);   // ~40 expected
  EXPECT_LT(downs.size(), 100u);
  for (const auto& d : downs) {
    EXPECT_GE(d.node, 0);
    EXPECT_LT(d.node, 20);
    EXPECT_GE(d.from, 0.0);
    EXPECT_GT(d.to, d.from);
  }
}

TEST(RandomDowntimes, ZeroRateProducesNone) {
  EXPECT_TRUE(random_downtimes(20, days(10), 0.0, hours(5), 7).empty());
  EXPECT_TRUE(random_downtimes(20, days(10), 2.0, 0.0, 7).empty());
}

TEST(RandomDowntimes, Deterministic) {
  const auto a = random_downtimes(10, days(5), 1.0, hours(2), 3);
  const auto b = random_downtimes(10, days(5), 1.0, hours(2), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].from, b[i].from);
  }
}

TEST(FailureInjection, NclSchemeDegradesGracefully) {
  // End-to-end: moderate contact loss lowers but does not zero the ratio.
  SyntheticTraceConfig tc;
  tc.node_count = 20;
  tc.duration = days(20);
  tc.target_total_contacts = 4000;
  tc.seed = 17;
  const ContactTrace trace = generate_trace(tc);

  ExperimentConfig config;
  config.avg_lifetime = days(3);
  config.avg_data_size = megabits(50);
  config.ncl_count = 3;
  config.repetitions = 1;
  config.sim.maintenance_interval = hours(12);

  const double clean =
      run_experiment(trace, SchemeKind::kNclCache, config).success_ratio.mean();
  config.sim.contact_miss_prob = 0.5;
  const double lossy =
      run_experiment(trace, SchemeKind::kNclCache, config).success_ratio.mean();
  EXPECT_GT(clean, 0.0);
  EXPECT_LT(lossy, clean);
}

}  // namespace
}  // namespace dtn

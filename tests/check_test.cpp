// Contract tests for the DTN_CHECK invariant layer (src/common/check.h):
// passing values sail through, violations abort with a message that names
// the invariant and the source location, and a deliberately injected
// violation travels through a real code path (knapsack utility turning NaN)
// into an abort rather than a silently corrupted result.
#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cache/knapsack.h"
#include "cache/ncl_scheme.h"
#include "cache/replacement.h"
#include "common/arena.h"
#include "common/rng.h"

namespace dtn {
namespace {

TEST(DtnCheckTest, PassingChecksAreSilent) {
  DTN_CHECK(1 + 1 == 2);
  DTN_CHECK(true, "never printed");
  DTN_CHECK_PROB(0.0);
  DTN_CHECK_PROB(0.5);
  DTN_CHECK_PROB(1.0);
  DTN_CHECK_FINITE(-12.5);
  DTN_CHECK_LE(1, 2);
  DTN_CHECK_LE(2.0, 2.0);
  DTN_CHECK_GE(7, -7);
}

TEST(DtnCheckTest, ChecksEvaluateArgumentsExactlyOnce) {
  int evaluations = 0;
  auto value = [&]() {
    ++evaluations;
    return 0.25;
  };
  DTN_CHECK_PROB(value());
  EXPECT_EQ(evaluations, 1);
  DTN_CHECK_LE(value(), 1.0);
  EXPECT_EQ(evaluations, 2);
}

TEST(DtnCheckDeathTest, FailureNamesInvariantAndLocation) {
  // The message must carry the stringified condition and this file's name,
  // so a violation is diagnosable from the abort message alone.
  EXPECT_DEATH(DTN_CHECK(2 + 2 == 5),
               "DTN_CHECK failed at .*check_test\\.cpp:[0-9]+: 2 \\+ 2 == 5");
  EXPECT_DEATH(DTN_CHECK(false, "buffer occupancy exceeds capacity"),
               "buffer occupancy exceeds capacity");
}

TEST(DtnCheckDeathTest, ProbabilityOutOfRangeAborts) {
  // The acceptance scenario: a reply probability of 1.5 must abort with a
  // message naming the invariant and the offending value.
  const double probability = 1.5;
  EXPECT_DEATH(DTN_CHECK_PROB(probability),
               "probability is a probability in \\[0, 1\\].*value = 1\\.5");
  const double negative = -0.25;
  EXPECT_DEATH(DTN_CHECK_PROB(negative), "value = -0\\.25");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(DTN_CHECK_PROB(nan), "value = nan");
}

TEST(DtnCheckDeathTest, NonFiniteAborts) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(DTN_CHECK_FINITE(inf), "inf is finite.*value = inf");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(DTN_CHECK_FINITE(nan), "value = nan");
}

TEST(DtnCheckDeathTest, ComparisonFailurePrintsBothValues) {
  const long long used = 150;
  const long long capacity = 100;
  EXPECT_DEATH(DTN_CHECK_LE(used, capacity),
               "used <= capacity: 150 vs 100");
  EXPECT_DEATH(DTN_CHECK_GE(capacity, used), "capacity >= used: 100 vs 150");
}

TEST(DtnCheckDeathTest, InjectedInfiniteUtilityAbortsInsideKnapsack) {
  // +inf slips past solve_knapsack's `value < 0.0` argument validation, is
  // always selected by the DP, and before this PR would propagate into
  // total_value and corrupt every downstream utility comparison silently.
  // Now the DTN_CHECK_FINITE contract on the result aborts in the real path.
  std::vector<KnapsackItem> items;
  items.push_back({std::numeric_limits<double>::infinity(), 512});
  EXPECT_DEATH(solve_knapsack(items, 1024, 256),
               "DTN_CHECK failed at .*knapsack\\.cpp:[0-9]+");
}

TEST(DtnCheckDeathTest, InjectedOutOfRangeWeightAbortsInsideReplacement) {
  // The acceptance scenario end-to-end: a path weight of 1.5 (instead of a
  // probability) reaches Algorithm 1, where utility u_i = w_i * p_X is the
  // Bernoulli caching parameter. The DTN_CHECK_PROB contract on u_i aborts
  // inside the replacement path instead of skewing the selection silently.
  std::vector<ReplacementItem> pool;
  ReplacementItem item;
  item.id = 1;
  item.size = 10;
  item.popularity = 1.0;
  item.at_a = true;
  pool.push_back(item);
  ReplacementConfig config;
  Rng rng(7);
  EXPECT_DEATH(plan_replacement(pool, 100, 100, /*weight_a=*/1.5,
                                /*weight_b=*/0.5, config, rng),
               "DTN_CHECK failed at .*replacement\\.cpp:[0-9]+.*"
               "probability in \\[0, 1\\]");
}

TEST(DtnCheckDeathTest, BundlePoolDoubleReleaseAborts) {
  // A handle released twice would enter the free list twice, and two later
  // bundles would alias one slot — the pool must abort on the second
  // release, not corrupt silently.
  SlabPool<int> pool;
  const SlabPool<int>::Handle h = pool.acquire();
  pool.release(h);
  EXPECT_DEATH(pool.release(h), "bundle-pool double release");
}

TEST(DtnCheckDeathTest, BundlePoolDeadSlotAccessAborts) {
  SlabPool<int> pool;
  const SlabPool<int>::Handle h = pool.acquire();
  pool.release(h);
  EXPECT_DEATH(pool.get(h), "bundle-pool access to a dead slot");
}

TEST(DtnCheckDeathTest, ContactWorkspaceReuseAcrossContactsAborts) {
  // The per-contact workspace is exclusive for the duration of one contact;
  // overlapping begin_contact calls would let two contacts share the same
  // replacement pools and kept-chain scratch.
  NclCachingScheme::ContactWorkspace ws;
  ws.begin_contact();
  EXPECT_DEATH(ws.begin_contact(),
               "contact workspace reuse across contacts");
  ws.end_contact();
  EXPECT_DEATH(ws.end_contact(),
               "end_contact without a matching begin_contact");
}

}  // namespace
}  // namespace dtn

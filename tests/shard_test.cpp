// Sharded bound-weave engine suite (sim/shard.h, sim/shard_engine.cpp,
// DESIGN.md §12).
//
// The headline contract is byte-identical output: for every scheme, every
// shard count and every thread count, the sharded engine must reproduce the
// serial engine's results bit-for-bit — metrics, RNG-dependent decisions,
// floating-point fold order included. The suite pins that contract from
// three directions: partitioner invariants (every node in exactly one
// shard, every contact owned exactly once, epoch bound correct), direct
// engine-vs-engine runs (clean, failure-injected, cursor-fed), and the
// user-facing sweep CSV across a {shards} x {threads} matrix — the same
// byte-identity check CI runs as a cross-machine artifact diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cache_data.h"
#include "experiment/experiment.h"
#include "experiment/sweep.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "trace/synthetic.h"
#include "traceio/cursor.h"
#include "workload/workload.h"

namespace dtn {
namespace {

ContactTrace small_trace() {
  SyntheticTraceConfig c;
  c.node_count = 16;
  c.duration = days(8);
  c.target_total_contacts = 3000;
  c.community_count = 4;  // communities give the partitioner real structure
  c.seed = 3;
  return generate_trace(c);
}

Workload small_workload(const ContactTrace& trace) {
  WorkloadConfig c;
  c.start = trace.start_time() + trace.duration() / 2.0;
  c.end = trace.end_time();
  c.avg_lifetime = hours(12);
  c.avg_size = megabits(20);
  c.seed = 99;
  return generate_workload(c, trace.node_count());
}

std::unique_ptr<Scheme> fresh_scheme(NodeId node_count) {
  FloodingConfig c;
  c.buffer_capacity.assign(static_cast<std::size_t>(node_count),
                           megabits(400));
  return std::make_unique<CacheDataScheme>(std::move(c));
}

SimConfig base_sim() {
  SimConfig sim;
  sim.path_horizon = hours(6);
  sim.maintenance_interval = hours(12);
  sim.seed = 7;
  return sim;
}

void expect_metrics_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.contacts_processed, b.contacts_processed);
  EXPECT_EQ(a.maintenance_ticks, b.maintenance_ticks);
  const MetricsCollector& ma = a.metrics;
  const MetricsCollector& mb = b.metrics;
  EXPECT_EQ(ma.queries_issued(), mb.queries_issued());
  EXPECT_EQ(ma.queries_satisfied(), mb.queries_satisfied());
  EXPECT_EQ(ma.duplicate_deliveries(), mb.duplicate_deliveries());
  EXPECT_EQ(ma.success_ratio(), mb.success_ratio());
  EXPECT_EQ(ma.delay_stats().count(), mb.delay_stats().count());
  EXPECT_EQ(ma.delay_stats().mean(), mb.delay_stats().mean());
  EXPECT_EQ(ma.delay_stats().variance(), mb.delay_stats().variance());
  EXPECT_EQ(ma.delay_stats().min(), mb.delay_stats().min());
  EXPECT_EQ(ma.delay_stats().max(), mb.delay_stats().max());
  EXPECT_EQ(ma.delay_percentile(0.5), mb.delay_percentile(0.5));
  EXPECT_EQ(ma.delay_percentile(0.9), mb.delay_percentile(0.9));
  EXPECT_EQ(ma.mean_copies(), mb.mean_copies());
  EXPECT_EQ(ma.bytes_transferred(), mb.bytes_transferred());
  EXPECT_EQ(ma.replacement_overhead(), mb.replacement_overhead());
}

void expect_stats_equal(const RunningStats& a, const RunningStats& b) {
  ASSERT_EQ(a.count(), b.count());
  ASSERT_EQ(a.mean(), b.mean());
  ASSERT_EQ(a.variance(), b.variance());
  ASSERT_EQ(a.min(), b.min());
  ASSERT_EQ(a.max(), b.max());
}

void expect_results_equal(const ExperimentResult& a,
                          const ExperimentResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  expect_stats_equal(a.success_ratio, b.success_ratio);
  expect_stats_equal(a.delay_hours, b.delay_hours);
  expect_stats_equal(a.copies_per_item, b.copies_per_item);
  expect_stats_equal(a.replacement_overhead, b.replacement_overhead);
  expect_stats_equal(a.queries_issued, b.queries_issued);
  expect_stats_equal(a.queries_satisfied, b.queries_satisfied);
  expect_stats_equal(a.gigabytes_transferred, b.gigabytes_transferred);
  expect_stats_equal(a.duplicate_deliveries, b.duplicate_deliveries);
}

// ---- partitioner invariants -----------------------------------------------

TEST(Shard, PlanAssignsEveryNodeToExactlyOneShard) {
  const ContactTrace trace = small_trace();
  for (const int k : {1, 2, 4, 8}) {
    const ShardPlan plan =
        build_shard_plan(trace.events(), trace.node_count(), k);
    EXPECT_EQ(plan.shard_count, k);
    ASSERT_EQ(plan.node_shard.size(),
              static_cast<std::size_t>(trace.node_count()));
    for (const std::int32_t s : plan.node_shard) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, k);
    }
    EXPECT_EQ(plan.intra_contacts + plan.cross_contacts,
              trace.events().size());
  }
}

TEST(Shard, SingleShardPlanHasNoCrossContacts) {
  const ContactTrace trace = small_trace();
  const ShardPlan plan = build_shard_plan(trace.events(), trace.node_count(), 1);
  EXPECT_EQ(plan.cross_contacts, 0u);
  EXPECT_EQ(plan.intra_contacts, trace.events().size());
  EXPECT_EQ(plan.epoch_bound, kNever);
  for (const std::int32_t s : plan.node_shard) EXPECT_EQ(s, 0);
}

TEST(Shard, FeedsPartitionTheIntraShardContacts) {
  const ContactTrace trace = small_trace();
  const auto& events = trace.events();
  const ShardPlan plan = build_shard_plan(events, trace.node_count(), 4);
  const auto feeds = shard_contact_feeds(plan, events);
  ASSERT_EQ(feeds.size(), 4u);

  std::vector<std::uint32_t> all;
  for (std::size_t s = 0; s < feeds.size(); ++s) {
    EXPECT_TRUE(std::is_sorted(feeds[s].begin(), feeds[s].end()));
    for (const std::uint32_t idx : feeds[s]) {
      const ContactEvent& e = events[idx];
      EXPECT_FALSE(plan.cross(e));
      EXPECT_EQ(plan.shard_of(e.a), static_cast<std::int32_t>(s));
      all.push_back(idx);
    }
  }
  // Exactly the intra contacts, each owned once.
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), plan.intra_contacts);
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(Shard, EpochBoundIsTheMinimumCrossContactGap) {
  const ContactTrace trace = small_trace();
  const auto& events = trace.events();
  const ShardPlan plan = build_shard_plan(events, trace.node_count(), 4);

  Time brute = kNever;
  Time prev = kNever;
  for (const ContactEvent& e : events) {
    if (!plan.cross(e)) continue;
    if (prev != kNever) brute = std::min(brute, e.start - prev);
    prev = e.start;
  }
  EXPECT_EQ(plan.epoch_bound, brute);
  if (plan.cross_contacts >= 2) {
    EXPECT_GE(plan.epoch_bound, 0.0);
  }
}

TEST(Shard, SubsetCursorReplaysAFeedInOrder) {
  const ContactTrace trace = small_trace();
  const auto& events = trace.events();
  const ShardPlan plan = build_shard_plan(events, trace.node_count(), 4);
  const auto feeds = shard_contact_feeds(plan, events);

  for (std::size_t s = 0; s < feeds.size(); ++s) {
    traceio::SubsetContactCursor cursor(events, feeds[s]);
    ContactEvent e;
    std::size_t count = 0;
    Time prev_start = -1.0;
    while (cursor.next(e)) {
      EXPECT_EQ(e.a, events[feeds[s][count]].a);
      EXPECT_EQ(e.start, events[feeds[s][count]].start);
      EXPECT_GE(e.start, prev_start);
      prev_start = e.start;
      ++count;
    }
    EXPECT_EQ(count, feeds[s].size());
  }
}

TEST(Shard, RejectsNonPositiveShardCount) {
  const ContactTrace trace = small_trace();
  const Workload workload = small_workload(trace);
  auto scheme = fresh_scheme(trace.node_count());
  SimConfig sim = base_sim();
  sim.shards = 0;
  EXPECT_THROW(run_simulation(trace, workload, *scheme, sim),
               std::invalid_argument);
}

// ---- engine-vs-engine determinism ----------------------------------------

TEST(ShardDeterminism, ShardedMatchesSerialEngineDirectly) {
  const ContactTrace trace = small_trace();
  const Workload workload = small_workload(trace);

  SimConfig serial = base_sim();
  serial.shards = 1;
  serial.threads = 1;
  auto scheme_serial = fresh_scheme(trace.node_count());
  const RunResult ref = run_simulation(trace, workload, *scheme_serial, serial);

  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 8}) {
      SimConfig sim = base_sim();
      sim.shards = shards;
      sim.threads = threads;
      auto scheme = fresh_scheme(trace.node_count());
      // Call the sharded engine directly so shards == 1 also exercises the
      // bound-weave machinery instead of the dispatch short-circuit.
      const RunResult got = run_simulation_sharded(
          trace.events(), trace.node_count(), trace.end_time(), workload,
          *scheme, sim);
      expect_metrics_equal(got, ref);
    }
  }
}

TEST(ShardDeterminism, ShardedMatchesSerialUnderFailureInjection) {
  const ContactTrace trace = small_trace();
  const Workload workload = small_workload(trace);

  SimConfig serial = base_sim();
  serial.contact_miss_prob = 0.15;
  serial.node_downtime = random_downtimes(trace.node_count(), trace.duration(),
                                          /*failures_per_node=*/1.5,
                                          /*mean_outage=*/hours(8),
                                          /*seed=*/11);
  serial.shards = 1;
  serial.threads = 1;
  auto scheme_serial = fresh_scheme(trace.node_count());
  const RunResult ref = run_simulation(trace, workload, *scheme_serial, serial);

  SimConfig sharded = serial;
  sharded.shards = 4;
  sharded.threads = 8;
  auto scheme = fresh_scheme(trace.node_count());
  const RunResult got = run_simulation(trace, workload, *scheme, sharded);
  expect_metrics_equal(got, ref);
}

TEST(ShardDeterminism, CursorOverloadDispatchesToShardedEngine) {
  const ContactTrace trace = small_trace();
  const Workload workload = small_workload(trace);

  SimConfig serial = base_sim();
  serial.shards = 1;
  auto scheme_serial = fresh_scheme(trace.node_count());
  const RunResult ref = run_simulation(trace, workload, *scheme_serial, serial);

  SimConfig sharded = base_sim();
  sharded.shards = 4;
  sharded.threads = 8;
  auto scheme = fresh_scheme(trace.node_count());
  traceio::VectorContactCursor cursor(trace.events());
  const RunResult got =
      run_simulation(cursor, trace.node_count(), trace.end_time(), workload,
                     *scheme, sharded);
  expect_metrics_equal(got, ref);
}

TEST(ShardDeterminism, EverySchemeMatchesAcrossShardCounts) {
  const ContactTrace trace = small_trace();

  ExperimentConfig config;
  config.avg_lifetime = days(1);
  config.avg_data_size = megabits(40);
  config.ncl_count = 2;
  config.repetitions = 1;
  config.auto_horizon = false;
  config.sim.path_horizon = hours(6);
  config.sim.maintenance_interval = hours(12);

  const SchemeKind kinds[] = {SchemeKind::kNclCache, SchemeKind::kNoCache,
                              SchemeKind::kRandomCache, SchemeKind::kCacheData,
                              SchemeKind::kBundleCache};
  for (const SchemeKind kind : kinds) {
    config.sim.shards = 1;
    config.sim.threads = 1;
    const ExperimentResult ref = run_experiment(trace, kind, config);
    config.sim.shards = 3;
    config.sim.threads = 8;
    const ExperimentResult got = run_experiment(trace, kind, config);
    expect_results_equal(got, ref);
  }
}

TEST(ShardDeterminism, SweepCsvIsByteIdenticalAcrossShardMatrix) {
  const ContactTrace trace = small_trace();

  SweepConfig base;
  base.base.avg_lifetime = days(1);
  base.base.avg_data_size = megabits(40);
  base.base.ncl_count = 2;
  base.base.repetitions = 2;
  base.base.auto_horizon = false;
  base.base.sim.path_horizon = hours(6);
  base.base.sim.maintenance_interval = hours(12);
  base.schemes = {SchemeKind::kNclCache, SchemeKind::kCacheData};
  base.lifetimes = {hours(12)};
  base.ncl_counts = {2};
  base.threads = 1;
  base.base.sim.shards = 1;

  const std::string reference = sweep_to_csv(run_sweep(trace, base));

  for (const int shards : {2, 4, 8}) {
    for (const int threads : {1, 8}) {
      SweepConfig config = base;
      config.base.sim.shards = shards;
      config.base.sim.threads = threads;
      const std::string csv = sweep_to_csv(run_sweep(trace, config));
      EXPECT_EQ(csv, reference) << "shards=" << shards
                                << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dtn

// Sparse/approximate NCL metric engine (graph/sparse_metric.h).
//
// The contract under test, in order of importance:
//  1. the degenerate configuration (all landmarks, zero floor) is
//     bit-identical to the exact engine — metrics, dispatch, and NCL
//     selection;
//  2. frontier pruning is floor-bounded: every pruned table entry is
//     either bit-identical to the unpruned build or exactly 0, and the
//     dropped weight is < the floor;
//  3. landmark selection is a deterministic pure function of
//     (graph, config) for every strategy;
//  4. the measured-error harness reports honest numbers on the Table-I
//     presets (checked-in bounds on infocom05 and mit graphs);
//  5. the scale generator emits a canonical, deduplicated, seeded edge
//     list and its ContactGraph bridge preserves it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "graph/sparse_metric.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

constexpr Time kHorizon = hours(1.0);
constexpr int kMaxHops = 4;

ContactGraph preset_graph(const SyntheticTraceConfig& preset) {
  return build_contact_graph(generate_trace(preset));
}

ContactGraph small_scale_graph(NodeId nodes) {
  return scale_contact_graph(scale_preset(nodes));
}

TEST(SparseMetric, DegenerateConfigIsBitIdenticalToFast) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  const std::vector<double> exact = ncl_metrics(graph, kHorizon, kMaxHops, 2);

  SparseMetricConfig degenerate;
  ASSERT_TRUE(degenerate.is_degenerate(graph.node_count()));
  const std::vector<double> sparse =
      sparse_ncl_metrics(graph, kHorizon, kMaxHops, 2, degenerate);
  ASSERT_EQ(exact, sparse);

  // landmark_count >= n is the same degenerate tier as <= 0.
  SparseMetricConfig over;
  over.landmark_count = graph.node_count() + 5;
  ASSERT_TRUE(over.is_degenerate(graph.node_count()));
  ASSERT_EQ(exact, sparse_ncl_metrics(graph, kHorizon, kMaxHops, 2, over));
}

TEST(SparseMetric, DegenerateDispatchAndSelectionMatchFast) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  const std::vector<double> via_fast =
      ncl_metrics(graph, kHorizon, kMaxHops, 2, MetricEngine::kFast, {});
  const std::vector<double> via_sparse =
      ncl_metrics(graph, kHorizon, kMaxHops, 2, MetricEngine::kSparse, {});
  EXPECT_EQ(via_fast, via_sparse);

  const NclSelection fast_sel = select_ncls(graph, kHorizon, 5, kMaxHops, 2);
  const NclSelection sparse_sel = select_ncls(
      graph, kHorizon, 5, kMaxHops, 2, MetricEngine::kSparse, {});
  EXPECT_EQ(fast_sel.central_nodes, sparse_sel.central_nodes);
  EXPECT_EQ(fast_sel.metric, sparse_sel.metric);
}

TEST(SparseMetric, DegenerateIsThreadCountInvariant) {
  const ContactGraph graph = small_scale_graph(300);
  SparseMetricConfig config;
  const std::vector<double> serial =
      sparse_ncl_metrics(graph, kHorizon, kMaxHops, 1, config);
  const std::vector<double> parallel =
      sparse_ncl_metrics(graph, kHorizon, kMaxHops, 4, config);
  EXPECT_EQ(serial, parallel);
}

TEST(SparseMetric, ChunkedTierIsThreadCountInvariant) {
  const ContactGraph graph = small_scale_graph(300);
  SparseMetricConfig config;
  config.landmark_count = 37;  // deliberately not a chunk multiple
  config.weight_floor = 1e-3;
  const std::vector<double> serial =
      sparse_ncl_metrics(graph, kHorizon, kMaxHops, 1, config);
  const std::vector<double> parallel =
      sparse_ncl_metrics(graph, kHorizon, kMaxHops, 4, config);
  EXPECT_EQ(serial, parallel);
}

TEST(SparseMetric, PrunedTableErrorIsFloorBounded) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  const double floor = 0.05;
  const EdgeExpTable edge_exp = build_edge_exp_table(graph, kHorizon);
  PathWorkspace ws;
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    const PathTable exact =
        compute_opportunistic_paths(graph, root, kHorizon, kMaxHops, ws,
                                    edge_exp);
    const PathTable pruned = compute_opportunistic_paths_pruned(
        graph, root, kHorizon, kMaxHops, ws, edge_exp, floor);
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      const double w = exact.weight(node);
      const double p = pruned.weight(node);
      if (w >= floor) {
        // Settled before any sub-floor activity: bit-identical.
        ASSERT_EQ(w, p) << "root " << root << " node " << node;
        ASSERT_EQ(exact.entry(node).next_hop, pruned.entry(node).next_hop);
        ASSERT_EQ(exact.entry(node).hops, pruned.entry(node).hops);
      } else {
        // Either survived identically or was dropped to 0; the error is
        // the dropped weight, itself < floor.
        ASSERT_TRUE(p == w || p == 0.0)
            << "root " << root << " node " << node;
        ASSERT_LT(w - p, floor);
      }
    }
  }
}

TEST(SparseMetric, ZeroFloorPruneIsBitIdentical) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  const EdgeExpTable edge_exp = build_edge_exp_table(graph, kHorizon);
  PathWorkspace ws;
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    const PathTable exact =
        compute_opportunistic_paths(graph, root, kHorizon, kMaxHops, ws,
                                    edge_exp);
    const PathTable pruned = compute_opportunistic_paths_pruned(
        graph, root, kHorizon, kMaxHops, ws, edge_exp, 0.0);
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      ASSERT_EQ(exact.weight(node), pruned.weight(node));
    }
  }
}

TEST(SparseMetric, LandmarkSelectionIsDeterministicAndValid) {
  const ContactGraph graph = small_scale_graph(200);
  for (const LandmarkStrategy strategy :
       {LandmarkStrategy::kUniform, LandmarkStrategy::kTopDegree,
        LandmarkStrategy::kTopRate}) {
    SparseMetricConfig config;
    config.landmark_count = 25;
    config.strategy = strategy;
    config.seed = 99;
    const std::vector<NodeId> a = select_landmarks(graph, config);
    const std::vector<NodeId> b = select_landmarks(graph, config);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a.size(), 25u);
    ASSERT_TRUE(std::is_sorted(a.begin(), a.end()));
    ASSERT_EQ(std::set<NodeId>(a.begin(), a.end()).size(), a.size());
    for (const NodeId id : a) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, graph.node_count());
    }
  }
}

TEST(SparseMetric, UniformLandmarksDependOnSeed) {
  const ContactGraph graph = small_scale_graph(200);
  SparseMetricConfig config;
  config.landmark_count = 25;
  config.seed = 1;
  const std::vector<NodeId> a = select_landmarks(graph, config);
  config.seed = 2;
  const std::vector<NodeId> b = select_landmarks(graph, config);
  EXPECT_NE(a, b);  // 25 of 200: equal draws are astronomically unlikely
}

TEST(SparseMetric, TopDegreeLandmarksAreTheHighestDegreeNodes) {
  const ContactGraph graph = small_scale_graph(200);
  SparseMetricConfig config;
  config.landmark_count = 10;
  config.strategy = LandmarkStrategy::kTopDegree;
  const std::vector<NodeId> landmarks = select_landmarks(graph, config);

  // Every selected node must have degree >= every unselected node's
  // degree (the id tie-break only reorders equal-degree nodes).
  std::size_t min_selected = graph.neighbors(landmarks.front()).size();
  for (const NodeId id : landmarks) {
    min_selected = std::min(min_selected, graph.neighbors(id).size());
  }
  const std::set<NodeId> chosen(landmarks.begin(), landmarks.end());
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    if (chosen.count(id)) continue;
    ASSERT_LE(graph.neighbors(id).size(), min_selected);
  }
}

TEST(SparseMetric, ErrorReportExactWhenAllLandmarks) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  SparseMetricConfig config;  // degenerate
  const MetricErrorReport report =
      measure_metric_error(graph, kHorizon, kMaxHops, 2, config, 5);
  EXPECT_EQ(report.max_abs_error, 0.0);
  EXPECT_EQ(report.mean_abs_error, 0.0);
  EXPECT_EQ(report.topk_overlap, 1.0);
  EXPECT_EQ(report.landmark_count,
            static_cast<std::size_t>(graph.node_count()));
}

TEST(SparseMetric, FloorOnlyErrorIsBoundedByFloor) {
  const ContactGraph graph = preset_graph(infocom05_preset());
  SparseMetricConfig config;
  config.weight_floor = 0.02;  // all landmarks, floor-only error
  const MetricErrorReport report =
      measure_metric_error(graph, kHorizon, kMaxHops, 2, config, 5);
  EXPECT_LE(report.max_abs_error, config.weight_floor);
}

// Checked-in measured-error bounds on the Table-I preset graphs. The
// numbers are deterministic (fixed seeds end to end), so these pin the
// *measured* quality of a realistic sparse configuration, not just the
// analytic floor bound.
TEST(SparseMetric, MeasuredErrorOnInfocomAndMitPresets) {
  for (const SyntheticTraceConfig& preset :
       {infocom05_preset(), mit_reality_preset()}) {
    SCOPED_TRACE(preset.name);
    const ContactGraph graph = preset_graph(preset);
    SparseMetricConfig config;
    config.landmark_count = graph.node_count() / 2;
    config.strategy = LandmarkStrategy::kTopDegree;
    config.weight_floor = 1e-3;
    const MetricErrorReport report =
        measure_metric_error(graph, kHorizon, kMaxHops, 2, config, 5);
    EXPECT_EQ(report.landmark_count,
              static_cast<std::size_t>(config.landmark_count));
    // Half the roots, biased to hubs: the Eq. 3 mean moves, but not far.
    EXPECT_LT(report.max_abs_error, 0.15);
    EXPECT_LT(report.mean_abs_error, 0.05);
    // The top-5 NCL set must remain mostly recoverable.
    EXPECT_GE(report.topk_overlap, 0.6);
  }
}

TEST(ScaleSynthetic, EdgeListIsCanonicalAndSeeded) {
  const ScaleSyntheticConfig config = scale_preset(1000);
  const std::vector<ScaleEdge> edges = scale_edge_list(config);
  ASSERT_FALSE(edges.empty());
  // Canonical: u < v, strictly sorted (therefore deduplicated), in range,
  // rates inside the configured log-uniform band.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_LT(edges[i].u, edges[i].v);
    ASSERT_GE(edges[i].u, 0);
    ASSERT_LT(edges[i].v, config.node_count);
    ASSERT_GE(edges[i].rate * 86400.0, config.min_rate_per_day - 1e-9);
    ASSERT_LE(edges[i].rate * 86400.0, config.max_rate_per_day + 1e-9);
    if (i > 0) {
      ASSERT_TRUE(edges[i - 1].u < edges[i].u ||
                  (edges[i - 1].u == edges[i].u &&
                   edges[i - 1].v < edges[i].v));
    }
  }
  // Dedup can only shrink the sampled target.
  const std::size_t target = static_cast<std::size_t>(
      config.mean_degree * static_cast<double>(config.node_count) / 2.0);
  ASSERT_LE(edges.size(), target);
  ASSERT_GE(edges.size(), target / 2);  // collisions are rare at this density

  // Deterministic in the seed; different seed, different sample.
  const std::vector<ScaleEdge> again = scale_edge_list(config);
  ASSERT_EQ(edges.size(), again.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(edges[i].u, again[i].u);
    ASSERT_EQ(edges[i].v, again[i].v);
    ASSERT_EQ(edges[i].rate, again[i].rate);
  }
  ScaleSyntheticConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  const std::vector<ScaleEdge> other = scale_edge_list(reseeded);
  bool differs = other.size() != edges.size();
  for (std::size_t i = 0; !differs && i < edges.size(); ++i) {
    differs = other[i].u != edges[i].u || other[i].v != edges[i].v;
  }
  EXPECT_TRUE(differs);
}

TEST(ScaleSynthetic, ContactGraphBridgeMatchesEdgeList) {
  const ScaleSyntheticConfig config = scale_preset(500);
  const std::vector<ScaleEdge> edges = scale_edge_list(config);
  const ContactGraph graph = scale_contact_graph(config);
  ASSERT_EQ(graph.node_count(), config.node_count);
  ASSERT_EQ(graph.edge_count(), edges.size());
  for (const ScaleEdge& e : edges) {
    ASSERT_EQ(graph.rate(e.u, e.v), e.rate);
    ASSERT_EQ(graph.rate(e.v, e.u), e.rate);
  }
}

TEST(ScaleSynthetic, TraceIsDeterministicAndSorted) {
  ScaleSyntheticConfig config = scale_preset(300);
  config.duration = days(0.25);
  const ContactTrace a = generate_scale_trace(config);
  const ContactTrace b = generate_scale_trace(config);
  ASSERT_EQ(a.node_count(), config.node_count);
  ASSERT_FALSE(a.events().empty());
  ASSERT_EQ(a.events(), b.events());
  for (std::size_t i = 1; i < a.events().size(); ++i) {
    ASSERT_LE(a.events()[i - 1].start, a.events()[i].start);
  }
  for (const ContactEvent& e : a.events()) {
    ASSERT_GE(e.start, 0.0);
    ASSERT_LT(e.start, config.duration);
    ASSERT_GT(e.duration, 0.0);
  }
}

TEST(SparseMetric, StringRoundTrips) {
  EXPECT_EQ(metric_engine_from_string("fast"), MetricEngine::kFast);
  EXPECT_EQ(metric_engine_from_string("reference"), MetricEngine::kReference);
  EXPECT_EQ(metric_engine_from_string("sparse"), MetricEngine::kSparse);
  EXPECT_STREQ(metric_engine_name(MetricEngine::kSparse), "sparse");
  EXPECT_THROW(metric_engine_from_string("nope"), std::invalid_argument);

  EXPECT_EQ(landmark_strategy_from_string("uniform"),
            LandmarkStrategy::kUniform);
  EXPECT_EQ(landmark_strategy_from_string("degree"),
            LandmarkStrategy::kTopDegree);
  EXPECT_EQ(landmark_strategy_from_string("rate"), LandmarkStrategy::kTopRate);
  EXPECT_STREQ(landmark_strategy_name(LandmarkStrategy::kTopRate), "rate");
  EXPECT_THROW(landmark_strategy_from_string("nope"), std::invalid_argument);
}

TEST(SparseMetric, RejectsInvalidFloor) {
  const ContactGraph graph = small_scale_graph(100);
  SparseMetricConfig config;
  config.weight_floor = 1.0;
  EXPECT_THROW(sparse_ncl_metrics(graph, kHorizon, kMaxHops, 1, config),
               std::invalid_argument);
  config.weight_floor = -0.1;
  EXPECT_THROW(sparse_ncl_metrics(graph, kHorizon, kMaxHops, 1, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace dtn

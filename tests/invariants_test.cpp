// Property tests: full simulations across random seeds and parameter
// corners must leave every scheme's internal state structurally consistent
// (buffer accounting exact, capacities respected).
#include <gtest/gtest.h>

#include "baselines/bundle_cache.h"
#include "baselines/cache_data.h"
#include "baselines/no_cache.h"
#include "baselines/random_cache.h"
#include "cache/ncl_scheme.h"
#include "experiment/experiment.h"
#include "graph/ncl.h"
#include "sim/engine.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

struct Scenario {
  std::uint64_t seed;
  double size_mb;
  double miss_prob;
  CacheStrategy strategy;
};

class InvariantSweep : public testing::TestWithParam<Scenario> {};

TEST_P(InvariantSweep, NclSchemeStateConsistentAfterRun) {
  const Scenario scenario = GetParam();

  SyntheticTraceConfig tc;
  tc.node_count = 24;
  tc.duration = days(14);
  tc.target_total_contacts = 6000;
  tc.popularity_shape = 1.6;
  tc.seed = scenario.seed;
  const ContactTrace trace = generate_trace(tc);

  ExperimentConfig config;
  config.avg_lifetime = days(2);
  config.avg_data_size = megabits(scenario.size_mb);
  config.ncl_count = 3;
  config.sim.maintenance_interval = hours(12);
  config.sim.contact_miss_prob = scenario.miss_prob;

  const ContactGraph graph = warmup_graph(trace, config);
  const Time horizon = effective_horizon(graph, config);
  const NclSelection ncls =
      select_ncls(graph, horizon, config.ncl_count, config.sim.max_hops);

  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = config.avg_lifetime;
  wc.avg_size = config.avg_data_size;
  wc.seed = scenario.seed ^ 0xABCD;
  const Workload workload = generate_workload(wc, trace.node_count());

  NclSchemeConfig sc;
  sc.central_nodes = ncls.central_nodes;
  sc.buffer_capacity =
      draw_buffer_capacities(config, trace.node_count(), scenario.seed);
  sc.strategy = scenario.strategy;
  sc.dynamic_ncl = scenario.seed % 2 == 0;  // exercise both paths
  NclCachingScheme scheme(std::move(sc));

  SimConfig sim = config.sim;
  sim.path_horizon = horizon;
  sim.seed = scenario.seed;
  const RunResult result = run_simulation(trace, workload, scheme, sim);

  EXPECT_TRUE(scheme.check_invariants(workload.registry()));
  EXPECT_LE(result.metrics.success_ratio(), 1.0);
  EXPECT_GE(result.metrics.success_ratio(), 0.0);
}

TEST_P(InvariantSweep, BaselinesStateConsistentAfterRun) {
  const Scenario scenario = GetParam();

  SyntheticTraceConfig tc;
  tc.node_count = 20;
  tc.duration = days(10);
  tc.target_total_contacts = 4000;
  tc.seed = scenario.seed + 100;
  const ContactTrace trace = generate_trace(tc);

  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = days(1);
  wc.avg_size = megabits(scenario.size_mb);
  wc.seed = scenario.seed;
  const Workload workload = generate_workload(wc, trace.node_count());

  ExperimentConfig config;
  std::vector<Bytes> buffers =
      draw_buffer_capacities(config, trace.node_count(), scenario.seed);

  SimConfig sim;
  sim.path_horizon = hours(8);
  sim.maintenance_interval = hours(12);
  sim.contact_miss_prob = scenario.miss_prob;
  sim.seed = scenario.seed;

  FloodingConfig fc;
  fc.buffer_capacity = buffers;

  RandomCacheScheme random_cache(fc);
  run_simulation(trace, workload, random_cache, sim);
  EXPECT_TRUE(random_cache.check_invariants(workload.registry()));

  CacheDataScheme cache_data(fc);
  run_simulation(trace, workload, cache_data, sim);
  EXPECT_TRUE(cache_data.check_invariants(workload.registry()));

  BundleCacheConfig bc;
  bc.flooding = fc;
  BundleCacheScheme bundle(bc);
  run_simulation(trace, workload, bundle, sim);
  EXPECT_TRUE(bundle.check_invariants(workload.registry()));
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, InvariantSweep,
    testing::Values(
        Scenario{1, 50.0, 0.0, CacheStrategy::kUtilityExchange},
        Scenario{2, 100.0, 0.0, CacheStrategy::kUtilityExchange},
        Scenario{3, 300.0, 0.0, CacheStrategy::kUtilityExchange},
        Scenario{4, 100.0, 0.3, CacheStrategy::kUtilityExchange},
        Scenario{5, 100.0, 0.0, CacheStrategy::kFifo},
        Scenario{6, 200.0, 0.0, CacheStrategy::kLru},
        Scenario{7, 200.0, 0.2, CacheStrategy::kGds},
        Scenario{8, 500.0, 0.0, CacheStrategy::kUtilityExchange},
        Scenario{9, 20.0, 0.5, CacheStrategy::kUtilityExchange},
        Scenario{10, 100.0, 0.0, CacheStrategy::kGds}),
    [](const testing::TestParamInfo<Scenario>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace dtn

// Serving daemon suite (src/daemon/, DESIGN.md §13).
//
// The headline contract is equivalence: a daemon that repairs its path
// tables incrementally (reverse edge->roots index + one-step endpoint
// drift detector + per-root re-runs) must end every batch with tables
// bit-identical to a from-scratch PathEngine::kReference rebuild of its
// own graph — across drift thresholds, traces, and thread counts. The
// suite pins that from four directions: estimator unit behavior, reverse
// index consistency, the audit-equivalence matrix (3 thresholds x 2
// traces, EXPECT_EQ on every settled weight plus the NCL set), and
// byte-identical ingest->query script output across runs and thread
// counts. A TSan-facing test runs query threads concurrently with the
// ingest loop: readers must see only whole published snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/edge_index.h"
#include "daemon/rate_estimator.h"
#include "daemon/script.h"
#include "graph/all_pairs.h"
#include "graph/ncl.h"
#include "trace/synthetic.h"
#include "traceio/cursor.h"

namespace dtn {
namespace {

using daemon::Daemon;
using daemon::DaemonConfig;
using daemon::EdgeRootsIndex;
using daemon::EwmaRateEstimator;
using daemon::ReplayFeed;

ContactTrace small_trace(std::uint64_t seed, NodeId nodes = 20,
                         double trace_days = 2.0) {
  SyntheticTraceConfig config;
  config.node_count = nodes;
  config.duration = days(trace_days);
  config.target_total_contacts = static_cast<double>(nodes) * 250.0;
  config.seed = seed;
  return generate_trace(config);
}

DaemonConfig test_config() {
  DaemonConfig config;
  config.horizon = hours(1.0);
  config.repair_interval = hours(2.0);
  return config;
}

// ---- EwmaRateEstimator -------------------------------------------------

TEST(EwmaRateEstimator, PairIndexRoundTrips) {
  const EwmaRateEstimator est(7);
  std::size_t expect = 0;
  for (NodeId a = 0; a < 7; ++a) {
    for (NodeId b = a + 1; b < 7; ++b) {
      EXPECT_EQ(est.pair_index(a, b), expect);
      EXPECT_EQ(est.pair_index(b, a), expect);  // symmetric
      NodeId ra = kNoNode;
      NodeId rb = kNoNode;
      est.pair_nodes(expect, ra, rb);
      EXPECT_EQ(ra, a);
      EXPECT_EQ(rb, b);
      ++expect;
    }
  }
}

TEST(EwmaRateEstimator, EwmaRuleMatchesHandComputation) {
  EwmaRateEstimator est(3, 0.25);
  est.record(0, 1, 100.0);
  EXPECT_EQ(est.rate(0, 1), 0.0);  // one contact: no gap yet
  est.record(0, 1, 160.0);         // first gap 60 seeds the EWMA
  EXPECT_DOUBLE_EQ(est.rate(0, 1), 1.0 / 60.0);
  est.record(0, 1, 260.0);  // gap 100: 0.25*100 + 0.75*60 = 70
  EXPECT_DOUBLE_EQ(est.rate(0, 1), 1.0 / 70.0);
  const daemon::PairRateSummary summary = est.summary(0, 1);
  EXPECT_EQ(summary.count, 3u);
  EXPECT_DOUBLE_EQ(summary.mean_gap, (60.0 + 100.0) / 2.0);
  EXPECT_DOUBLE_EQ(summary.ewma_gap, 70.0);
}

TEST(EwmaRateEstimator, DuplicateTimestampsDoNotPoisonTheRate) {
  EwmaRateEstimator est(3);
  est.record(1, 2, 50.0);
  est.record(1, 2, 50.0);  // same meeting reported twice: gap 0
  EXPECT_EQ(est.contact_count(1, 2), 2u);
  EXPECT_EQ(est.rate(1, 2), 0.0);  // no positive gap yet -> no rate
  est.record(1, 2, 80.0);
  EXPECT_DOUBLE_EQ(est.rate(1, 2), 1.0 / 30.0);  // seeded by the 30s gap
}

TEST(EwmaRateEstimator, MinContactsFloorSuppressesSingletons) {
  EwmaRateEstimator est(4, 0.125, 3);
  est.record(0, 3, 10.0);
  est.record(0, 3, 20.0);
  EXPECT_EQ(est.rate(0, 3), 0.0);  // 2 contacts < floor of 3
  est.record(0, 3, 40.0);
  EXPECT_GT(est.rate(0, 3), 0.0);
}

TEST(EwmaRateEstimator, ExpiryDecayMatchesHandComputation) {
  // alpha 0.5, expiry 100 s. Pair (0,1) meets at t = 0, 10, 20: gaps
  // {10, 10}, EWMA 10, rate 0.1. The watermark is stream data — contacts
  // of *other* pairs move it and with it the silence of (0,1).
  EwmaRateEstimator est(3, 0.5, 2, 100.0);
  est.record(0, 1, 0.0);
  est.record(0, 1, 10.0);
  est.record(0, 1, 20.0);
  EXPECT_EQ(est.watermark(), 20.0);
  EXPECT_DOUBLE_EQ(est.rate(0, 1), 0.1);

  // Silence 5 <= EWMA 10: no evidence of decay, rate unchanged.
  est.record(0, 2, 25.0);
  EXPECT_DOUBLE_EQ(est.rate(0, 1), 0.1);

  // Silence 30 in (EWMA, expiry): blend the ongoing gap in provisionally,
  // rate = 1 / (0.5*30 + 0.5*10) = 1/20.
  est.record(0, 2, 50.0);
  EXPECT_EQ(est.watermark(), 50.0);
  EXPECT_DOUBLE_EQ(est.rate(0, 1), 0.05);

  // Silence 100 >= expiry: the pair has expired, rate 0.
  est.record(0, 2, 120.0);
  EXPECT_EQ(est.rate(0, 1), 0.0);

  // The legacy estimator (expiry 0) fed the same stream never decays.
  EwmaRateEstimator legacy(3, 0.5, 2);
  legacy.record(0, 1, 0.0);
  legacy.record(0, 1, 10.0);
  legacy.record(0, 1, 20.0);
  legacy.record(0, 2, 25.0);
  legacy.record(0, 2, 50.0);
  legacy.record(0, 2, 120.0);
  EXPECT_DOUBLE_EQ(legacy.rate(0, 1), 0.1);
}

TEST(EwmaRateEstimator, RejectsNegativeExpiry) {
  EXPECT_THROW(EwmaRateEstimator(3, 0.125, 2, -1.0), std::invalid_argument);
}

TEST(EwmaRateEstimator, WarmStartEqualsIncrementalFeed) {
  const ContactTrace trace = small_trace(7);
  EwmaRateEstimator batch(trace.node_count());
  batch.warm_start(trace);
  EwmaRateEstimator incremental(trace.node_count());
  for (const ContactEvent& event : trace.events()) {
    incremental.record(event.a, event.b, event.start);
  }
  const auto a = batch.summaries();
  const auto b = incremental.summaries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].ewma_gap, b[i].ewma_gap);
    EXPECT_EQ(a[i].rate, b[i].rate);
  }
  // Canonical ascending order: golden-testable without sorting.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_TRUE(a[i - 1].a < a[i].a ||
                (a[i - 1].a == a[i].a && a[i - 1].b < a[i].b));
  }
}

// ---- EdgeRootsIndex ----------------------------------------------------

TEST(EdgeRootsIndex, MatchesBruteForceScanOfTables) {
  const ContactTrace trace = small_trace(11);
  const ContactGraph graph = build_contact_graph(trace, -1.0, 2);
  const AllPairsPaths paths(graph, hours(1.0), 8, 1);
  std::vector<PathTable> tables;
  for (NodeId r = 0; r < paths.node_count(); ++r) {
    tables.push_back(paths.table(r));
  }
  EdgeRootsIndex index;
  index.rebuild(tables);

  // Every (u, v): the indexed root list must equal the roots whose table
  // records u or v as the other's parent.
  const NodeId n = graph.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      std::vector<NodeId> expect;
      for (NodeId r = 0; r < n; ++r) {
        const PathTable& t = tables[static_cast<std::size_t>(r)];
        bool uses = false;
        for (NodeId node = 0; node < n; ++node) {
          const PathTable::Entry& e = t.entry(node);
          if (e.hops == 0 || e.weight <= 0.0) continue;
          if ((node == u && e.next_hop == v) ||
              (node == v && e.next_hop == u)) {
            uses = true;
          }
        }
        if (uses) expect.push_back(r);
      }
      const std::vector<NodeId>* got = index.roots_using(u, v);
      if (expect.empty()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, expect);
      }
    }
  }
}

TEST(EdgeRootsIndex, UpdateRootKeepsIndexInSync) {
  const ContactTrace trace = small_trace(13);
  ContactGraph graph = build_contact_graph(trace, -1.0, 2);
  const AllPairsPaths before(graph, hours(1.0), 8, 1);
  std::vector<PathTable> tables;
  for (NodeId r = 0; r < before.node_count(); ++r) {
    tables.push_back(before.table(r));
  }
  EdgeRootsIndex incremental;
  incremental.rebuild(tables);

  // Perturb the graph, recompute one root, update only that root.
  ASSERT_GT(graph.node_count(), 3);
  graph.set_rate(0, 1, graph.rate(0, 1) > 0.0 ? graph.rate(0, 1) * 4.0
                                              : 1.0 / 600.0);
  tables[2] = compute_opportunistic_paths(graph, 2, hours(1.0), 8);
  incremental.update_root(2, tables[2]);

  EdgeRootsIndex fresh;
  fresh.rebuild(tables);
  const NodeId n = graph.node_count();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const std::vector<NodeId>* a = incremental.roots_using(u, v);
      const std::vector<NodeId>* b = fresh.roots_using(u, v);
      if (a == nullptr || b == nullptr) {
        EXPECT_EQ(a == nullptr, b == nullptr);
      } else {
        EXPECT_EQ(*a, *b);
      }
    }
  }
  EXPECT_EQ(incremental.edge_count(), fresh.edge_count());
}

// ---- incremental repair equivalence (the acceptance matrix) ------------

/// Replays `trace` (second half live, first half warm) through a daemon,
/// then EXPECT_EQs every settled weight and the NCL set against a fresh
/// kReference rebuild of the daemon's own graph.
void expect_repair_equivalence(const ContactTrace& trace, double drift) {
  DaemonConfig config = test_config();
  config.drift_threshold = drift;
  config.audit = true;  // every batch also self-checks internally
  Daemon d(trace.node_count(), config);

  const std::size_t split = trace.size() / 2;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));
  for (std::size_t i = split; i < trace.size(); ++i) {
    d.ingest(trace.events()[i]);
  }
  d.repair_now();

  const auto snap = d.snapshot();
  ASSERT_TRUE(snap->ready());
  const AllPairsPaths reference(snap->graph, config.horizon, config.max_hops,
                                1, PathEngine::kReference);
  const NodeId n = trace.node_count();
  for (NodeId r = 0; r < n; ++r) {
    for (NodeId node = 0; node < n; ++node) {
      EXPECT_EQ(snap->tables[static_cast<std::size_t>(r)].weight(node),
                reference.table(r).weight(node))
          << "root " << r << " node " << node << " drift " << drift;
    }
  }
  // NCL set equality at k = 5 through the real selector.
  const NclSelection selection =
      select_ncls(snap->graph, config.horizon, 5, config.max_hops, 1);
  const daemon::NclAnswer answer = d.ncl_set(5);
  EXPECT_EQ(answer.central, selection.central_nodes) << "drift " << drift;
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(snap->metric[static_cast<std::size_t>(i)],
              selection.metric[static_cast<std::size_t>(i)])
        << "node " << i << " drift " << drift;
  }
}

TEST(DaemonRepair, EquivalentToReferenceRebuildAcrossThresholdsTraceA) {
  const ContactTrace trace = small_trace(3);
  for (const double drift : {0.05, 0.2, 0.5}) {
    expect_repair_equivalence(trace, drift);
  }
}

TEST(DaemonRepair, EquivalentToReferenceRebuildAcrossThresholdsTraceB) {
  const ContactTrace trace = small_trace(29, 16, 3.0);
  for (const double drift : {0.05, 0.2, 0.5}) {
    expect_repair_equivalence(trace, drift);
  }
}

TEST(DaemonRepair, NewlyConnectedComponentIsDiscovered) {
  // Regression guard for the endpoint detector's "new edge" case: a pair
  // that never met during warm start starts meeting afterwards; once its
  // estimate crosses the floor the repair must pull the new reachability
  // into every affected table (audit cross-checks internally too).
  DaemonConfig config = test_config();
  config.audit = true;
  Daemon d(4, config);

  std::vector<ContactEvent> warm;
  for (int i = 0; i < 8; ++i) {
    // Two disjoint pairs: 0-1 and 2-3.
    warm.push_back({0.0 + 600.0 * i, 60.0, 0, 1});
    warm.push_back({300.0 + 600.0 * i, 60.0, 2, 3});
  }
  d.warm_start(ContactTrace(4, warm, "warm"));
  EXPECT_EQ(d.path_weight(0, 3, hours(1.0)).weight, 0.0);  // disconnected

  // Bridge 1-2 appears in the live stream.
  for (int i = 0; i < 8; ++i) {
    d.ingest({5000.0 + 600.0 * i, 60.0, 1, 2});
  }
  d.repair_now();
  EXPECT_GT(d.path_weight(0, 3, hours(1.0)).weight, 0.0);
  const auto snap = d.snapshot();
  const AllPairsPaths reference(snap->graph, config.horizon, config.max_hops,
                                1, PathEngine::kReference);
  for (NodeId r = 0; r < 4; ++r) {
    for (NodeId node = 0; node < 4; ++node) {
      EXPECT_EQ(snap->tables[static_cast<std::size_t>(r)].weight(node),
                reference.table(r).weight(node));
    }
  }
}

/// Contact stream for the expiry tests: pair 0-1 meets three times early
/// and then goes silent while 0-2, 1-2 and 2-3 keep meeting, moving the
/// watermark far past 0-1's expiry.
std::vector<ContactEvent> expiring_pair_events() {
  std::vector<ContactEvent> events;
  events.push_back({0.0, 30.0, 0, 1});
  events.push_back({60.0, 30.0, 0, 1});
  events.push_back({120.0, 30.0, 0, 1});
  for (double t = 0.0; t <= 7200.0; t += 200.0) {
    events.push_back({t, 30.0, 2, 3});
  }
  for (double t = 50.0; t <= 7200.0; t += 250.0) {
    events.push_back({t, 30.0, 1, 2});
  }
  for (double t = 100.0; t <= 7200.0; t += 300.0) {
    events.push_back({t, 30.0, 0, 2});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ContactEvent& a, const ContactEvent& b) {
                     return a.start < b.start;
                   });
  return events;
}

std::unique_ptr<Daemon> expired_pair_daemon(Time expiry, int threads) {
  DaemonConfig config = test_config();
  config.repair_interval = 600.0;
  config.ewma_alpha = 0.5;
  config.rate_expiry = expiry;
  config.threads = threads;
  config.audit = true;  // every batch self-checks vs a reference rebuild
  auto d = std::make_unique<Daemon>(4, config);
  for (const ContactEvent& event : expiring_pair_events()) {
    d->ingest(event);
  }
  d->repair_now();
  return d;
}

TEST(DaemonExpiry, SilentPairEdgeIsRemovedAtRepair) {
  const auto d = expired_pair_daemon(1800.0, 1);
  const auto snap = d->snapshot();
  ASSERT_TRUE(snap->ready());
  // 0-1 last met at t=120; the watermark ended at 7200, silence 7080 far
  // beyond the 1800 s expiry: the edge must be gone from the graph, and
  // the audited repair already proved the tables match that graph.
  EXPECT_EQ(snap->graph.rate(0, 1), 0.0);
  // The pairs that kept meeting must still be present.
  EXPECT_GT(snap->graph.rate(2, 3), 0.0);
  EXPECT_GT(snap->graph.rate(1, 2), 0.0);
  EXPECT_GT(snap->graph.rate(0, 2), 0.0);
  // Node 0 stays reachable through the 0-2 edge, not through 0-1.
  EXPECT_GT(d->path_weight(0, 3, hours(1.0)).weight, 0.0);
}

TEST(DaemonExpiry, LegacyZeroExpiryKeepsSilentEdges) {
  const auto d = expired_pair_daemon(0.0, 1);
  const auto snap = d->snapshot();
  ASSERT_TRUE(snap->ready());
  EXPECT_GT(snap->graph.rate(0, 1), 0.0);  // persists forever without expiry
}

TEST(DaemonExpiry, RemovalIsDeterministicAcrossThreadCounts) {
  const auto serial = expired_pair_daemon(1800.0, 1);
  const auto parallel = expired_pair_daemon(1800.0, 4);
  const auto a = serial->snapshot();
  const auto b = parallel->snapshot();
  ASSERT_EQ(a->epoch, b->epoch);
  EXPECT_EQ(a->metric, b->metric);
  EXPECT_EQ(a->graph.edge_count(), b->graph.edge_count());
  for (NodeId r = 0; r < 4; ++r) {
    for (NodeId node = 0; node < 4; ++node) {
      EXPECT_EQ(a->tables[static_cast<std::size_t>(r)].weight(node),
                b->tables[static_cast<std::size_t>(r)].weight(node));
    }
  }
}

// ---- epochs, staleness, queries ----------------------------------------

TEST(Daemon, EpochZeroAnswersBeforeWarmStart) {
  const Daemon d(6, test_config());
  const auto snap = d.snapshot();
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_FALSE(snap->ready());
  EXPECT_TRUE(d.ncl_set(3).central.empty());
  EXPECT_EQ(d.path_weight(1, 2, 600.0).weight, 0.0);
  EXPECT_EQ(d.path_weight(2, 2, 600.0).weight, 1.0);  // self, always
  EXPECT_TRUE(d.placement_for(0, 2).ranked.empty());
}

TEST(Daemon, WarmStartPublishesEpochOneAndStampsAnswers) {
  const ContactTrace trace = small_trace(5);
  Daemon d(trace.node_count(), test_config());
  d.warm_start(trace);
  const daemon::NclAnswer answer = d.ncl_set(3);
  EXPECT_EQ(answer.info.epoch, 1u);
  EXPECT_EQ(answer.info.staleness, 0.0);  // nothing ingested past the scan
  EXPECT_EQ(answer.central.size(), 3u);
}

TEST(Daemon, StalenessTracksIngestAheadOfRepair) {
  const ContactTrace trace = small_trace(19);
  DaemonConfig config = test_config();
  config.repair_interval = kNever;  // manual batches only
  Daemon d(trace.node_count(), config);
  const std::size_t split = trace.size() / 2;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));
  const Time warm_end = d.watermark();

  for (std::size_t i = split; i < trace.size(); ++i) {
    d.ingest(trace.events()[i]);
  }
  const Time lag = d.ncl_set(1).info.staleness;
  EXPECT_DOUBLE_EQ(lag, trace.events().back().start - warm_end);
  d.repair_now();
  EXPECT_EQ(d.ncl_set(1).info.staleness, 0.0);
}

TEST(Daemon, QueriesMatchAllPairsSemantics) {
  const ContactTrace trace = small_trace(23);
  DaemonConfig config = test_config();
  Daemon d(trace.node_count(), config);
  d.warm_start(trace);
  const auto snap = d.snapshot();
  const AllPairsPaths paths(snap->graph, config.horizon, config.max_hops, 1);
  const NodeId n = trace.node_count();
  for (NodeId from = 0; from < n; ++from) {
    for (NodeId to = 0; to < n; ++to) {
      EXPECT_EQ(d.path_weight(from, to, hours(0.5)).weight,
                paths.weight_at(from, to, hours(0.5)))
          << from << "->" << to;
    }
  }
  // Placement = NCL set ranked by stored weight towards the source.
  const daemon::PlacementAnswer placement = d.placement_for(4, 3);
  ASSERT_EQ(placement.ranked.size(), 3u);
  for (std::size_t i = 1; i < placement.weights.size(); ++i) {
    EXPECT_GE(placement.weights[i - 1], placement.weights[i]);
  }
  for (std::size_t i = 0; i < placement.ranked.size(); ++i) {
    const NodeId c = placement.ranked[i];
    EXPECT_EQ(placement.weights[i],
              c == 4 ? 1.0
                     : snap->tables[static_cast<std::size_t>(c)].weight(4));
  }
}

// ---- script byte-identity ----------------------------------------------

std::string run_scripted(const ContactTrace& trace, int threads) {
  DaemonConfig config = test_config();
  config.threads = threads;
  Daemon d(trace.node_count(), config);
  const std::size_t split = trace.size() / 2;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  std::vector<ContactEvent> live(trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split),
                                 trace.events().end());
  d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));
  traceio::VectorContactCursor cursor(live);
  ReplayFeed feed(cursor);
  std::istringstream script(
      "# replayed-clock query mix\n"
      "ncl 4\n"
      "advance 90000\n"
      "repair\n"
      "ncl 4\nweight 0 7 1800\nplace 3 4\n"
      "drain\nrepair\n"
      "ncl 4\nweight 0 7 1800\nweight 2 2 1\nplace 3 4\nstats\n");
  std::ostringstream out;
  daemon::run_script(d, feed, script, out);
  return out.str();
}

TEST(DaemonScript, ByteIdenticalAcrossRunsAndThreadCounts) {
  const ContactTrace trace = small_trace(31);
  const std::string serial = run_scripted(trace, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run_scripted(trace, 1), serial);   // same run, same bytes
  EXPECT_EQ(run_scripted(trace, 0), serial);   // all cores
  EXPECT_EQ(run_scripted(trace, 3), serial);   // odd pool size
}

TEST(DaemonScript, MalformedCommandThrowsWithLineNumber) {
  const ContactTrace trace = small_trace(37, 8, 1.0);
  Daemon d(trace.node_count(), test_config());
  traceio::VectorContactCursor cursor(trace.events());
  ReplayFeed feed(cursor);
  std::istringstream script("ncl 2\nbogus 1 2\n");
  std::ostringstream out;
  try {
    daemon::run_script(d, feed, script, out);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(ReplayFeed, AdvanceBoundaryIsExclusiveAndPushbackHolds) {
  std::vector<ContactEvent> events;
  events.push_back({100.0, 10.0, 0, 1});
  events.push_back({200.0, 10.0, 1, 2});
  events.push_back({200.0, 10.0, 0, 2});  // duplicate timestamp
  events.push_back({300.0, 10.0, 2, 3});
  Daemon d(4, test_config());
  traceio::VectorContactCursor cursor(events);
  ReplayFeed feed(cursor);
  EXPECT_EQ(feed.advance_until(d, 100.0), 0u);  // strict: start < limit
  EXPECT_EQ(feed.advance_until(d, 200.0), 1u);
  EXPECT_EQ(feed.advance_until(d, 201.0), 2u);  // both duplicates
  EXPECT_FALSE(feed.exhausted());               // 300 parked in the slot
  EXPECT_EQ(feed.drain(d), 1u);
  EXPECT_TRUE(feed.exhausted());
  EXPECT_EQ(d.stats().contacts_ingested, 4u);
}

// ---- concurrent readers (the TSan contract) ----------------------------

TEST(DaemonConcurrency, QueriesRaceFreeAgainstIngestAndRepair) {
  const ContactTrace trace = small_trace(43, 16, 2.0);
  DaemonConfig config = test_config();
  config.repair_interval = hours(1.0);  // many publishes during the replay
  Daemon d(trace.node_count(), config);
  const std::size_t split = trace.size() / 4;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_epoch = 0;
      std::uint64_t count = 0;
      const NodeId n = trace.node_count();
      while (!stop.load(std::memory_order_acquire)) {
        const NodeId src = static_cast<NodeId>(
            (static_cast<std::uint64_t>(t) + count) %
            static_cast<std::uint64_t>(n));
        const daemon::NclAnswer ncl = d.ncl_set(3);
        const daemon::WeightAnswer w =
            d.path_weight(src, (src + 1) % n, hours(0.5));
        const daemon::PlacementAnswer p = d.placement_for(src, 2);
        // Epochs only move forward, and every answer is internally
        // consistent (a torn snapshot would trip the DTN_CHECKs inside
        // the query path long before this).
        EXPECT_GE(ncl.info.epoch, last_epoch);
        last_epoch = ncl.info.epoch;
        EXPECT_GE(w.weight, 0.0);
        EXPECT_LE(w.weight, 1.0);
        EXPECT_LE(p.ranked.size(), 2u);
        ++count;
      }
      queries.fetch_add(count, std::memory_order_relaxed);
    });
  }

  for (std::size_t i = split; i < trace.size(); ++i) {
    d.ingest(trace.events()[i]);
  }
  d.repair_now();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_GT(d.snapshot()->epoch, 1u);  // the replay actually published
}

}  // namespace
}  // namespace dtn

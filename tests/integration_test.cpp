// End-to-end integration tests: full simulations on synthetic traces,
// asserting the qualitative relationships the paper's evaluation reports.
// These use small traces so the whole suite stays fast, but exercise every
// module together: generation -> rate estimation -> NCL selection -> push /
// pull / response / replacement -> metrics.
#include <gtest/gtest.h>

#include "experiment/experiment.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

SyntheticTraceConfig itest_trace() {
  // A sparse DTN (paper regime): ~0.3 contacts per pair per day. Dense
  // traces let incidental caching catch up — the NCL advantage is a
  // sparse-network phenomenon (Sec. VI).
  SyntheticTraceConfig c;
  c.name = "itest";
  c.node_count = 30;
  c.duration = days(30);
  c.target_total_contacts = 4000;
  c.popularity_shape = 1.6;
  c.seed = 23;
  return c;
}

ExperimentConfig itest_config() {
  ExperimentConfig c;
  c.avg_lifetime = days(4);
  c.avg_data_size = megabits(100);
  c.ncl_count = 4;
  c.repetitions = 2;
  c.sim.maintenance_interval = hours(12);
  c.seed = 99;
  return c;
}

class IntegrationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new ContactTrace(generate_trace(itest_trace()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static const ContactTrace& trace() { return *trace_; }

 private:
  static const ContactTrace* trace_;
};

const ContactTrace* IntegrationTest::trace_ = nullptr;

TEST_F(IntegrationTest, NclCacheDeliversSubstantialFractionOfQueries) {
  const ExperimentResult r =
      run_experiment(trace(), SchemeKind::kNclCache, itest_config());
  EXPECT_GT(r.queries_issued.mean(), 20.0);
  EXPECT_GT(r.success_ratio.mean(), 0.25);
}

TEST_F(IntegrationTest, NclCacheBeatsNoCache) {
  const auto results = run_comparison(
      trace(), {SchemeKind::kNclCache, SchemeKind::kNoCache}, itest_config());
  EXPECT_GT(results[0].success_ratio.mean(), results[1].success_ratio.mean());
}

TEST_F(IntegrationTest, NclCacheBeatsRandomCache) {
  const auto results =
      run_comparison(trace(), {SchemeKind::kNclCache, SchemeKind::kRandomCache},
                     itest_config());
  EXPECT_GT(results[0].success_ratio.mean(), results[1].success_ratio.mean());
}

TEST_F(IntegrationTest, CachingSchemesProduceCopies) {
  const ExperimentResult ncl =
      run_experiment(trace(), SchemeKind::kNclCache, itest_config());
  EXPECT_GT(ncl.copies_per_item.mean(), 0.1);
  const ExperimentResult none =
      run_experiment(trace(), SchemeKind::kNoCache, itest_config());
  EXPECT_EQ(none.copies_per_item.mean(), 0.0);
}

TEST_F(IntegrationTest, DelaysWithinQueryConstraint) {
  const ExperimentConfig config = itest_config();
  const ExperimentResult r =
      run_experiment(trace(), SchemeKind::kNclCache, config);
  ASSERT_GT(r.delay_hours.count(), 0u);
  // Delays are bounded by the query time constraint T_L / 2.
  EXPECT_LE(r.delay_hours.mean() * 3600.0,
            config.avg_lifetime * config.query_constraint_factor + 1e-6);
  EXPECT_GE(r.delay_hours.mean(), 0.0);
}

TEST_F(IntegrationTest, LongerLifetimeImprovesSuccessRatio) {
  // Fig. 10(a): success ratio grows with T_L for the NCL scheme.
  ExperimentConfig short_config = itest_config();
  short_config.avg_lifetime = hours(6);
  ExperimentConfig long_config = itest_config();
  long_config.avg_lifetime = hours(36);
  const double short_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, short_config)
          .success_ratio.mean();
  const double long_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, long_config)
          .success_ratio.mean();
  EXPECT_GT(long_ratio, short_ratio);
}

TEST_F(IntegrationTest, LargerDataHurtsSuccessRatio) {
  // Fig. 11(a): larger items strain buffers and reduce performance.
  ExperimentConfig small = itest_config();
  small.avg_data_size = megabits(20);
  ExperimentConfig large = itest_config();
  large.avg_data_size = megabits(400);
  const double small_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, small)
          .success_ratio.mean();
  const double large_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, large)
          .success_ratio.mean();
  EXPECT_GE(small_ratio, large_ratio);
}

TEST_F(IntegrationTest, UtilityReplacementBeatsFifoUnderPressure) {
  // Fig. 12: with tight buffers the utility-based exchange outperforms
  // traditional insertion-time policies.
  ExperimentConfig utility = itest_config();
  utility.avg_data_size = megabits(200);
  utility.strategy = CacheStrategy::kUtilityExchange;
  ExperimentConfig fifo = utility;
  fifo.strategy = CacheStrategy::kFifo;
  const double u_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, utility)
          .success_ratio.mean();
  const double f_ratio =
      run_experiment(trace(), SchemeKind::kNclCache, fifo)
          .success_ratio.mean();
  EXPECT_GE(u_ratio, f_ratio * 0.95);  // never materially worse
}

TEST_F(IntegrationTest, MoreNclsIncreaseCachingOverhead) {
  // Fig. 13(c): more NCLs -> more pushed copies (when buffers allow).
  ExperimentConfig one = itest_config();
  one.ncl_count = 1;
  ExperimentConfig many = itest_config();
  many.ncl_count = 6;
  const double copies_one =
      run_experiment(trace(), SchemeKind::kNclCache, one)
          .copies_per_item.mean();
  const double copies_many =
      run_experiment(trace(), SchemeKind::kNclCache, many)
          .copies_per_item.mean();
  EXPECT_GT(copies_many, copies_one);
}

TEST_F(IntegrationTest, ResponseModesAllFunctional) {
  for (ResponseMode mode : {ResponseMode::kAlways, ResponseMode::kSigmoid,
                            ResponseMode::kPathWeight}) {
    ExperimentConfig config = itest_config();
    config.response_mode = mode;
    config.repetitions = 1;
    const ExperimentResult r =
        run_experiment(trace(), SchemeKind::kNclCache, config);
    EXPECT_GT(r.success_ratio.mean(), 0.0)
        << "mode " << static_cast<int>(mode);
  }
}

TEST_F(IntegrationTest, AllStrategiesFunctional) {
  for (CacheStrategy strategy :
       {CacheStrategy::kUtilityExchange, CacheStrategy::kFifo,
        CacheStrategy::kLru, CacheStrategy::kGds}) {
    ExperimentConfig config = itest_config();
    config.strategy = strategy;
    config.repetitions = 1;
    const ExperimentResult r =
        run_experiment(trace(), SchemeKind::kNclCache, config);
    EXPECT_GT(r.success_ratio.mean(), 0.0)
        << "strategy " << static_cast<int>(strategy);
  }
}

// Every scheme must complete a full run without violating internal
// invariants on each preset-shaped (shortened) trace.
class AllSchemesSweep : public testing::TestWithParam<SchemeKind> {};

TEST_P(AllSchemesSweep, CompletesOnSyntheticTrace) {
  SyntheticTraceConfig tc = itest_trace();
  tc.node_count = 20;
  tc.target_total_contacts = 15000;
  const ContactTrace trace = generate_trace(tc);
  ExperimentConfig config = itest_config();
  config.repetitions = 1;
  const ExperimentResult r = run_experiment(trace, GetParam(), config);
  EXPECT_GE(r.success_ratio.mean(), 0.0);
  EXPECT_LE(r.success_ratio.mean(), 1.0);
  EXPECT_GE(r.copies_per_item.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesSweep,
    testing::Values(SchemeKind::kNclCache, SchemeKind::kNoCache,
                    SchemeKind::kRandomCache, SchemeKind::kCacheData,
                    SchemeKind::kBundleCache),
    [](const testing::TestParamInfo<SchemeKind>& param_info) {
      std::string name = scheme_kind_name(param_info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

}  // namespace
}  // namespace dtn

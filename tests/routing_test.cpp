#include <gtest/gtest.h>

#include "graph/all_pairs.h"
#include "routing/engine.h"
#include "routing/protocols.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

/// Manual scaffold: line graph 0 - 1 - 2 - 3 for path-weight context.
class RoutingTest : public testing::Test {
 protected:
  RoutingTest() : rng_(41) {
    ContactGraph graph(4);
    graph.set_rate(0, 1, 1.0 / 600.0);
    graph.set_rate(1, 2, 1.0 / 600.0);
    graph.set_rate(2, 3, 1.0 / 600.0);
    paths_ = AllPairsPaths(graph, hours(1));
    ctx_.paths = &paths_;
    ctx_.rng = &rng_;
    ctx_.now = 0.0;
  }

  BundleMessage make_message(NodeId src, NodeId dst, Bytes size = 100) {
    BundleMessage m;
    m.id = next_id_++;
    m.source = src;
    m.destination = dst;
    m.created = ctx_.now;
    m.expires = ctx_.now + 1e9;
    m.size = size;
    return m;
  }

  void contact(Router& router, NodeId a, NodeId b, Bytes budget = 1 << 30) {
    LinkBudget link(budget);
    router.on_contact(ctx_, a, b, link);
  }

  Rng rng_;
  AllPairsPaths paths_;
  RoutingContext ctx_;
  MessageId next_id_ = 0;
};

TEST_F(RoutingTest, SubmitValidation) {
  EpidemicRouter router(4);
  EXPECT_THROW(router.submit(ctx_, make_message(-1, 2)), std::invalid_argument);
  EXPECT_THROW(router.submit(ctx_, make_message(0, 9)), std::invalid_argument);
  EXPECT_THROW(EpidemicRouter{1}, std::invalid_argument);
}

TEST_F(RoutingTest, SelfAddressedDeliversImmediately) {
  EpidemicRouter router(4);
  BundleMessage m = make_message(2, 2);
  m.destination = 2;
  router.submit(ctx_, m);
  EXPECT_TRUE(router.delivered(m.id));
  EXPECT_EQ(router.copies_in_flight(), 0u);
}

TEST_F(RoutingTest, DirectDeliveryWaitsForDestination) {
  DirectDeliveryRouter router(4);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);
  contact(router, 1, 2);
  EXPECT_FALSE(router.delivered(m.id));
  EXPECT_EQ(router.copies_in_flight(), 1u);  // still only at the source
  contact(router, 0, 3);
  EXPECT_TRUE(router.delivered(m.id));
  EXPECT_EQ(router.transmissions(), 1u);
}

TEST_F(RoutingTest, EpidemicFloodsAllEncounters) {
  EpidemicRouter router(4);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);
  contact(router, 1, 2);
  EXPECT_EQ(router.copies_in_flight(), 3u);  // nodes 0, 1, 2
  contact(router, 2, 3);
  EXPECT_TRUE(router.delivered(m.id));
}

TEST_F(RoutingTest, EpidemicDropsCopiesOnceDelivered) {
  EpidemicRouter router(4);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);
  contact(router, 0, 3);  // delivered
  ASSERT_TRUE(router.delivered(m.id));
  // Remaining copies evaporate lazily on the next contact touch.
  contact(router, 1, 2);
  contact(router, 0, 2);
  EXPECT_EQ(router.copies_in_flight(), 0u);
}

TEST_F(RoutingTest, SprayAndWaitRespectsBudget) {
  SprayAndWaitRouter router(4, /*copies=*/2);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);  // splits: 0 and 1 hold one token each
  EXPECT_EQ(router.copies_in_flight(), 2u);
  contact(router, 0, 2);  // both at 1 token: wait phase, no replication
  contact(router, 1, 2);
  EXPECT_EQ(router.copies_in_flight(), 2u);
  contact(router, 1, 3);  // direct delivery from the wait phase
  EXPECT_TRUE(router.delivered(m.id));
}

TEST_F(RoutingTest, SprayAndWaitNameIncludesBudget) {
  SprayAndWaitRouter router(4, 16);
  EXPECT_EQ(router.name(), "SprayAndWait(L=16)");
  EXPECT_THROW(SprayAndWaitRouter(4, 0), std::invalid_argument);
}

TEST_F(RoutingTest, GradientHandsOverTowardsDestination) {
  GradientRouter router(4);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);
  EXPECT_EQ(router.copies_in_flight(), 1u);  // single copy moved to 1
  contact(router, 1, 0);                     // backwards: must not move
  contact(router, 1, 2);
  contact(router, 2, 3);
  EXPECT_TRUE(router.delivered(m.id));
  EXPECT_EQ(router.transmissions(), 3u);  // 0->1, 1->2, 2->3 (delivery)
}

TEST_F(RoutingTest, GradientKeepsWhenNoPaths) {
  GradientRouter router(4);
  RoutingContext blind;
  Rng rng(1);
  blind.rng = &rng;  // no paths
  const BundleMessage m = make_message(0, 3);
  router.submit(blind, m);
  LinkBudget budget(1 << 30);
  router.on_contact(blind, 0, 1, budget);
  EXPECT_EQ(router.copies_in_flight(), 1u);  // stayed at the source
  EXPECT_FALSE(router.delivered(m.id));
}

TEST_F(RoutingTest, ProphetDirectReinforcement) {
  ProphetRouter router(4);
  EXPECT_EQ(router.predictability(0, 1), 0.0);
  contact(router, 0, 1);
  EXPECT_NEAR(router.predictability(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(router.predictability(1, 0), 0.75, 1e-12);
  contact(router, 0, 1);
  EXPECT_NEAR(router.predictability(0, 1), 0.75 + 0.25 * 0.75, 1e-12);
}

TEST_F(RoutingTest, ProphetTransitivity) {
  ProphetRouter router(4);
  contact(router, 1, 2);  // P(1,2) = .75
  contact(router, 0, 1);  // P(0,1) = .75; transitivity: P(0,2) > 0
  EXPECT_GT(router.predictability(0, 2), 0.0);
  EXPECT_LT(router.predictability(0, 2), router.predictability(0, 1));
}

TEST_F(RoutingTest, ProphetAging) {
  ProphetRouter router(4);
  contact(router, 0, 1);
  const double fresh = router.predictability(0, 1);
  ctx_.now += 100 * 3600.0;  // 100 aging units
  contact(router, 0, 2);     // triggers aging of node 0's table
  EXPECT_LT(router.predictability(0, 1), fresh * 0.2);
}

TEST_F(RoutingTest, ProphetForwardsToBetterCustodian) {
  ProphetRouter router(4);
  // Teach node 1 that it meets node 3.
  contact(router, 1, 3);
  const BundleMessage m = make_message(0, 3);
  router.submit(ctx_, m);
  contact(router, 0, 1);  // P(1,3) > P(0,3): hand over
  EXPECT_EQ(router.copies_in_flight(), 1u);
  contact(router, 1, 3);
  EXPECT_TRUE(router.delivered(m.id));
}

TEST_F(RoutingTest, ProphetParameterValidation) {
  ProphetRouter::Params bad;
  bad.gamma = 1.5;
  EXPECT_THROW(ProphetRouter(4, bad), std::invalid_argument);
  bad = {};
  bad.p_init = 0.0;
  EXPECT_THROW(ProphetRouter(4, bad), std::invalid_argument);
}

TEST_F(RoutingTest, ExpiredMessagesDropLazily) {
  EpidemicRouter router(4);
  BundleMessage m = make_message(0, 3);
  m.expires = ctx_.now + 10.0;
  router.submit(ctx_, m);
  ctx_.now += 100.0;
  contact(router, 0, 1);
  EXPECT_EQ(router.copies_in_flight(), 0u);
  EXPECT_FALSE(router.delivered(m.id));
}

TEST_F(RoutingTest, BudgetExhaustionBlocksTransfer) {
  EpidemicRouter router(4);
  const BundleMessage m = make_message(0, 3, /*size=*/1000);
  router.submit(ctx_, m);
  contact(router, 0, 1, /*budget=*/10);
  EXPECT_EQ(router.copies_in_flight(), 1u);  // no room: nothing replicated
  contact(router, 0, 1);
  EXPECT_EQ(router.copies_in_flight(), 2u);
}

// ---- end-to-end comparison on a synthetic trace ----

class RoutingComparison : public testing::Test {
 protected:
  static ContactTrace make_trace() {
    SyntheticTraceConfig c;
    c.node_count = 25;
    c.duration = days(10);
    c.target_total_contacts = 6000;
    c.popularity_shape = 1.7;
    c.seed = 77;
    return generate_trace(c);
  }
};

TEST_F(RoutingComparison, EpidemicDominatesDeliveryAndCost) {
  const ContactTrace trace = make_trace();
  RoutingExperimentConfig config;
  config.message_count = 120;
  config.ttl = days(2);

  EpidemicRouter epidemic(trace.node_count());
  DirectDeliveryRouter direct(trace.node_count());
  SprayAndWaitRouter spray(trace.node_count(), 8);

  const RoutingResult r_epidemic = run_routing(trace, epidemic, config);
  const RoutingResult r_direct = run_routing(trace, direct, config);
  const RoutingResult r_spray = run_routing(trace, spray, config);

  // Epidemic is the delivery/delay optimum and the cost maximum.
  EXPECT_GE(r_epidemic.delivery_ratio, r_spray.delivery_ratio);
  EXPECT_GE(r_spray.delivery_ratio, r_direct.delivery_ratio);
  EXPECT_GT(r_epidemic.transmissions_per_message,
            r_spray.transmissions_per_message);
  EXPECT_GT(r_spray.transmissions_per_message,
            r_direct.transmissions_per_message);
  EXPECT_GT(r_epidemic.delivery_ratio, 0.5);
}

TEST_F(RoutingComparison, SingleCopySchemesBeatDirectDelivery) {
  const ContactTrace trace = make_trace();
  RoutingExperimentConfig config;
  config.message_count = 120;
  config.ttl = days(2);

  DirectDeliveryRouter direct(trace.node_count());
  GradientRouter gradient(trace.node_count());
  ProphetRouter prophet(trace.node_count());

  const RoutingResult r_direct = run_routing(trace, direct, config);
  const RoutingResult r_gradient = run_routing(trace, gradient, config);
  const RoutingResult r_prophet = run_routing(trace, prophet, config);

  EXPECT_GT(r_gradient.delivery_ratio, r_direct.delivery_ratio);
  EXPECT_GT(r_prophet.delivery_ratio, r_direct.delivery_ratio);
}

TEST_F(RoutingComparison, DeterministicAcrossRuns) {
  const ContactTrace trace = make_trace();
  RoutingExperimentConfig config;
  config.message_count = 50;
  EpidemicRouter a(trace.node_count());
  EpidemicRouter b(trace.node_count());
  const RoutingResult ra = run_routing(trace, a, config);
  const RoutingResult rb = run_routing(trace, b, config);
  EXPECT_DOUBLE_EQ(ra.delivery_ratio, rb.delivery_ratio);
  EXPECT_DOUBLE_EQ(ra.mean_delay_hours, rb.mean_delay_hours);
}

TEST_F(RoutingComparison, WorkloadValidation) {
  const ContactTrace trace = make_trace();
  RoutingExperimentConfig config;
  config.message_count = 0;
  EXPECT_THROW(generate_messages(config, trace), std::invalid_argument);
  config = {};
  config.message_size = 0;
  EXPECT_THROW(generate_messages(config, trace), std::invalid_argument);
}

}  // namespace
}  // namespace dtn

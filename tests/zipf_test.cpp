#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dtn {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    const ZipfDistribution z(50, s);
    double total = 0.0;
    for (std::size_t j = 1; j <= 50; ++j) total += z.probability(j);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(Zipf, RankOneMostPopular) {
  const ZipfDistribution z(10, 1.0);
  for (std::size_t j = 2; j <= 10; ++j) {
    EXPECT_GT(z.probability(1), z.probability(j));
  }
}

TEST(Zipf, MonotoneDecreasingInRank) {
  const ZipfDistribution z(20, 1.5);
  for (std::size_t j = 1; j < 20; ++j) {
    EXPECT_GE(z.probability(j), z.probability(j + 1));
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfDistribution z(8, 0.0);
  for (std::size_t j = 1; j <= 8; ++j) {
    EXPECT_NEAR(z.probability(j), 1.0 / 8.0, 1e-12);
  }
}

TEST(Zipf, KnownRatios) {
  // With s = 1, P_1 / P_2 = 2.
  const ZipfDistribution z(100, 1.0);
  EXPECT_NEAR(z.probability(1) / z.probability(2), 2.0, 1e-9);
  // With s = 2, P_1 / P_3 = 9.
  const ZipfDistribution z2(100, 2.0);
  EXPECT_NEAR(z2.probability(1) / z2.probability(3), 9.0, 1e-9);
}

TEST(Zipf, SingleItem) {
  const ZipfDistribution z(1, 1.0);
  EXPECT_DOUBLE_EQ(z.probability(1), 1.0);
  Rng rng(1);
  EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, InvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -0.1), std::invalid_argument);
  const ZipfDistribution z(5, 1.0);
  EXPECT_THROW(z.probability(0), std::out_of_range);
  EXPECT_THROW(z.probability(6), std::out_of_range);
}

TEST(Zipf, SampleFrequenciesMatchProbabilities) {
  const ZipfDistribution z(10, 1.0);
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, z.probability(j + 1), 0.005)
        << "rank " << j + 1;
  }
}

// Paper Fig. 9(b): higher exponents concentrate probability on low ranks.
class ZipfExponentSweep : public testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, HeadMassGrowsWithExponent) {
  const double s = GetParam();
  const ZipfDistribution low(100, s);
  const ZipfDistribution high(100, s + 0.5);
  double head_low = 0.0, head_high = 0.0;
  for (std::size_t j = 1; j <= 5; ++j) {
    head_low += low.probability(j);
    head_high += high.probability(j);
  }
  EXPECT_GT(head_high, head_low);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace dtn

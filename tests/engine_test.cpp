#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "experiment/experiment.h"
#include "graph/ncl.h"
#include "sim/link_budget.h"
#include "trace/synthetic.h"
#include "traceio/cursor.h"
#include "workload/workload.h"

namespace dtn {
namespace {

/// Records every hook invocation for assertions.
class RecordingScheme : public Scheme {
 public:
  std::string name() const override { return "recording"; }

  void on_start(SimServices& services) override {
    start_count++;
    start_time = services.now();
  }
  void on_maintenance(SimServices& services) override {
    maintenance_times.push_back(services.now());
    paths_available = !services.paths().empty();
  }
  void on_data_generated(SimServices& services, const DataItem& item) override {
    data_events.push_back({services.now(), item.id});
  }
  void on_query(SimServices& services, const Query& query) override {
    query_times.push_back(services.now());
    if (deliver_immediately) services.deliver(query);
  }
  void on_contact(SimServices& services, NodeId a, NodeId b,
                  LinkBudget& budget) override {
    contacts.push_back({services.now(), a, b, budget.capacity()});
  }
  std::size_t cached_copies(Time) const override { return fake_copies; }

  struct ContactRecord {
    Time when;
    NodeId a, b;
    Bytes budget;
  };
  int start_count = 0;
  Time start_time = -1.0;
  bool paths_available = false;
  bool deliver_immediately = false;
  std::size_t fake_copies = 0;
  std::vector<std::pair<Time, DataId>> data_events;
  std::vector<Time> query_times;
  std::vector<Time> maintenance_times;
  std::vector<ContactRecord> contacts;
};

ContactTrace simple_trace() {
  std::vector<ContactEvent> events;
  for (int i = 0; i < 20; ++i) {
    ContactEvent e;
    e.start = 100.0 * (i + 1);
    e.duration = 50.0;
    e.a = i % 3;
    e.b = (i % 3 + 1) % 4 == i % 3 ? 3 : (i % 3 + 1);
    if (e.a == e.b) e.b = (e.a + 1) % 4;
    events.push_back(e);
  }
  return ContactTrace(4, events, "engine-test");
}

Workload simple_workload(Time start, Time end) {
  DataRegistry registry;
  std::vector<WorkloadEvent> events;

  DataItem item;
  item.source = 0;
  item.created = start;
  item.expires = end + 1000.0;
  item.size = 100;
  const DataId id = registry.add(item);
  WorkloadEvent gen;
  gen.time = start;
  gen.kind = WorkloadEvent::Kind::kDataGenerated;
  gen.data = id;
  events.push_back(gen);

  Query q;
  q.id = 0;
  q.requester = 2;
  q.data = id;
  q.issued = start + 300.0;
  q.expires = start + 900.0;
  WorkloadEvent qe;
  qe.time = q.issued;
  qe.kind = WorkloadEvent::Kind::kQueryIssued;
  qe.query = q;
  events.push_back(qe);

  return Workload(std::move(registry), std::move(events));
}

SimConfig test_config() {
  SimConfig c;
  c.path_horizon = 600.0;
  c.maintenance_interval = 500.0;
  c.min_contacts_for_rate = 1;
  return c;
}

TEST(Engine, StartCalledOnceBeforeFirstDataEvent) {
  RecordingScheme scheme;
  const auto trace = simple_trace();
  run_simulation(trace, simple_workload(1000.0, 2000.0), scheme, test_config());
  EXPECT_EQ(scheme.start_count, 1);
  ASSERT_FALSE(scheme.data_events.empty());
  EXPECT_LE(scheme.start_time, scheme.data_events.front().first);
}

TEST(Engine, WarmupContactsNotDelivered) {
  RecordingScheme scheme;
  run_simulation(simple_trace(), simple_workload(1000.0, 2000.0), scheme,
                 test_config());
  for (const auto& c : scheme.contacts) {
    EXPECT_GE(c.when, 1000.0);
  }
}

TEST(Engine, AllDataPhaseContactsDelivered) {
  RecordingScheme scheme;
  const auto result = run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                                     scheme, test_config());
  // Contacts at 1000..2000: events at 1000,1100,...,2000 inclusive = 11.
  EXPECT_EQ(result.contacts_processed, scheme.contacts.size());
  EXPECT_EQ(scheme.contacts.size(), 11u);
}

TEST(Engine, StreamingCursorBitIdenticalToMaterialized) {
  // The ContactTrace overload delegates to the cursor overload, so a
  // VectorContactCursor-fed run must reproduce every hook invocation —
  // same contacts in the same order with the same link budgets, same
  // maintenance ticks, same query delivery times.
  const ContactTrace trace = simple_trace();
  const Workload workload = simple_workload(1000.0, 2000.0);

  RecordingScheme materialized;
  const RunResult from_trace =
      run_simulation(trace, workload, materialized, test_config());

  RecordingScheme streamed;
  traceio::VectorContactCursor cursor(trace.events());
  const RunResult from_cursor =
      run_simulation(cursor, trace.node_count(), trace.end_time(), workload,
                     streamed, test_config());

  EXPECT_EQ(from_cursor.contacts_processed, from_trace.contacts_processed);
  EXPECT_EQ(from_cursor.maintenance_ticks, from_trace.maintenance_ticks);
  ASSERT_EQ(streamed.contacts.size(), materialized.contacts.size());
  for (std::size_t i = 0; i < streamed.contacts.size(); ++i) {
    EXPECT_EQ(streamed.contacts[i].when, materialized.contacts[i].when);
    EXPECT_EQ(streamed.contacts[i].a, materialized.contacts[i].a);
    EXPECT_EQ(streamed.contacts[i].b, materialized.contacts[i].b);
    EXPECT_EQ(streamed.contacts[i].budget, materialized.contacts[i].budget);
  }
  EXPECT_EQ(streamed.maintenance_times, materialized.maintenance_times);
  EXPECT_EQ(streamed.query_times, materialized.query_times);
}

TEST(Engine, StreamingCursorZeroEndHintProcessesAllContacts) {
  // trace_end_hint = 0 is documented safe: the engine tracks the latest
  // contact end itself, so no contact is dropped.
  const ContactTrace trace = simple_trace();
  const Workload workload = simple_workload(1000.0, 2000.0);
  RecordingScheme scheme;
  traceio::VectorContactCursor cursor(trace.events());
  const RunResult result = run_simulation(cursor, trace.node_count(),
                                          /*trace_end_hint=*/0.0, workload,
                                          scheme, test_config());
  EXPECT_EQ(result.contacts_processed, 11u);
}

TEST(Engine, StreamingCursorMatchesMaterializedForNclScheme) {
  // The production path: the full NCL caching scheme (fast engine) fed
  // from a cursor versus from a materialized trace must produce identical
  // metrics — the streaming ingestion layer is invisible to the scheme.
  SyntheticTraceConfig tc;
  tc.node_count = 15;
  tc.duration = days(1);
  tc.target_total_contacts = 1500;
  tc.seed = 9;
  const ContactTrace trace = generate_trace(tc);

  ExperimentConfig config;
  config.ncl_count = 2;
  config.auto_horizon = false;
  config.sim.path_horizon = hours(2);
  config.sim.maintenance_interval = hours(12);
  config.seed = 5;

  const WarmupContext warmup = make_warmup_context(trace, config);
  const NclSelection ncls =
      select_ncls(warmup.graph, warmup.horizon, config.ncl_count,
                  config.sim.max_hops, config.sim.threads);
  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = config.avg_lifetime;
  wc.generation_prob = config.generation_prob;
  wc.avg_size = config.avg_data_size;
  wc.seed = config.seed;
  const Workload workload = generate_workload(wc, trace.node_count());
  const std::vector<Bytes> buffers =
      draw_buffer_capacities(config, trace.node_count(), config.seed);
  SimConfig sc = config.sim;
  sc.path_horizon = warmup.horizon;

  std::unique_ptr<Scheme> scheme_trace =
      make_scheme(SchemeKind::kNclCache, config, ncls, buffers);
  const RunResult from_trace =
      run_simulation(trace, workload, *scheme_trace, sc);

  std::unique_ptr<Scheme> scheme_cursor =
      make_scheme(SchemeKind::kNclCache, config, ncls, buffers);
  traceio::VectorContactCursor cursor(trace.events());
  const RunResult from_cursor =
      run_simulation(cursor, trace.node_count(), trace.end_time(), workload,
                     *scheme_cursor, sc);

  EXPECT_EQ(from_cursor.contacts_processed, from_trace.contacts_processed);
  EXPECT_EQ(from_cursor.metrics.success_ratio(),
            from_trace.metrics.success_ratio());
  EXPECT_EQ(from_cursor.metrics.mean_delay(), from_trace.metrics.mean_delay());
  EXPECT_EQ(from_cursor.metrics.queries_satisfied(),
            from_trace.metrics.queries_satisfied());
  EXPECT_EQ(from_cursor.metrics.duplicate_deliveries(),
            from_trace.metrics.duplicate_deliveries());
}

TEST(Engine, LinkBudgetFromDurationAndBandwidth) {
  RecordingScheme scheme;
  SimConfig config = test_config();
  config.bandwidth_per_second = 1000;  // bytes/s
  run_simulation(simple_trace(), simple_workload(1000.0, 2000.0), scheme, config);
  for (const auto& c : scheme.contacts) {
    EXPECT_EQ(c.budget, 50 * 1000);  // 50 s contacts
  }
}

TEST(Engine, MaintenanceTicksAtInterval) {
  RecordingScheme scheme;
  run_simulation(simple_trace(), simple_workload(1000.0, 2000.0), scheme,
                 test_config());
  ASSERT_GE(scheme.maintenance_times.size(), 2u);
  EXPECT_DOUBLE_EQ(scheme.maintenance_times[0], 1000.0);
  EXPECT_DOUBLE_EQ(scheme.maintenance_times[1], 1500.0);
  EXPECT_TRUE(scheme.paths_available);
}

TEST(Engine, QueryCountsInMetrics) {
  RecordingScheme scheme;
  const auto result = run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                                     scheme, test_config());
  EXPECT_EQ(result.metrics.queries_issued(), 1u);
  EXPECT_EQ(result.metrics.queries_satisfied(), 0u);
  EXPECT_EQ(result.metrics.success_ratio(), 0.0);
}

TEST(Engine, ImmediateDeliveryRecordsZeroDelay) {
  RecordingScheme scheme;
  scheme.deliver_immediately = true;
  const auto result = run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                                     scheme, test_config());
  EXPECT_EQ(result.metrics.queries_satisfied(), 1u);
  EXPECT_DOUBLE_EQ(result.metrics.success_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.mean_delay(), 0.0);
}

TEST(Engine, CopySamplingUsesAliveItems) {
  RecordingScheme scheme;
  scheme.fake_copies = 4;
  const auto result = run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                                     scheme, test_config());
  // One data item alive during sampling: copies/item = 4.
  EXPECT_DOUBLE_EQ(result.metrics.mean_copies(), 4.0);
}

TEST(Engine, InvalidConfigsThrow) {
  RecordingScheme scheme;
  SimConfig c = test_config();
  c.bandwidth_per_second = 0;
  EXPECT_THROW(run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                              scheme, c),
               std::invalid_argument);
  c = test_config();
  c.path_horizon = 0.0;
  EXPECT_THROW(run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                              scheme, c),
               std::invalid_argument);
  c = test_config();
  c.maintenance_interval = 0.0;
  EXPECT_THROW(run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                              scheme, c),
               std::invalid_argument);
  c = test_config();
  c.max_hops = 0;
  EXPECT_THROW(run_simulation(simple_trace(), simple_workload(1000.0, 2000.0),
                              scheme, c),
               std::invalid_argument);
}

TEST(MetricsCollector, LateDeliveryDoesNotCount) {
  MetricsCollector m;
  Query q;
  q.id = 1;
  q.issued = 0.0;
  q.expires = 10.0;
  m.on_query_issued(q);
  m.on_delivery(q, 10.0);  // exactly at expiry: too late
  EXPECT_EQ(m.queries_satisfied(), 0u);
  m.on_delivery(q, 5.0);
  EXPECT_EQ(m.queries_satisfied(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_delay(), 5.0);
}

TEST(MetricsCollector, DuplicateDeliveriesCountedSeparately) {
  MetricsCollector m;
  Query q;
  q.id = 1;
  q.issued = 0.0;
  q.expires = 10.0;
  m.on_query_issued(q);
  m.on_delivery(q, 2.0);
  m.on_delivery(q, 3.0);
  EXPECT_EQ(m.queries_satisfied(), 1u);
  EXPECT_EQ(m.duplicate_deliveries(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_delay(), 2.0);
}

TEST(MetricsCollector, DelayPercentiles) {
  MetricsCollector m;
  for (QueryId id = 0; id < 10; ++id) {
    Query q;
    q.id = id;
    q.issued = 0.0;
    q.expires = 1000.0;
    m.on_query_issued(q);
    m.on_delivery(q, static_cast<double>(id + 1) * 10.0);  // 10..100
  }
  EXPECT_DOUBLE_EQ(m.delay_percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(m.delay_percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(m.delay_percentile(0.5), 55.0);
  EXPECT_DOUBLE_EQ(m.mean_delay(), 55.0);
}

TEST(MetricsCollector, DelayPercentileEmptyIsZero) {
  MetricsCollector m;
  EXPECT_EQ(m.delay_percentile(0.5), 0.0);
}

TEST(MetricsCollector, ReplacementOverheadNormalized) {
  MetricsCollector m;
  m.set_data_count(4);
  m.on_replacement(2);
  m.on_replacement(6);
  EXPECT_DOUBLE_EQ(m.replacement_overhead(), 2.0);
}

TEST(LinkBudget, ConsumeSemantics) {
  LinkBudget b(100);
  EXPECT_EQ(b.capacity(), 100);
  EXPECT_TRUE(b.can_transfer(100));
  EXPECT_TRUE(b.consume(60));
  EXPECT_EQ(b.remaining(), 40);
  EXPECT_EQ(b.used(), 60);
  EXPECT_FALSE(b.consume(50));
  EXPECT_EQ(b.remaining(), 40);  // failed consume charges nothing
  EXPECT_TRUE(b.consume(40));
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.consume(-1));
}

TEST(LinkBudget, NegativeCapacityClamped) {
  LinkBudget b(-10);
  EXPECT_EQ(b.capacity(), 0);
  EXPECT_TRUE(b.exhausted());
}

}  // namespace
}  // namespace dtn

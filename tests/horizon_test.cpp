// Tests for the adaptive path-horizon calibration (Sec. IV-B's rule).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/ncl.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

ContactGraph sample_graph() {
  SyntheticTraceConfig c;
  c.node_count = 30;
  c.duration = days(10);
  c.target_total_contacts = 6000;
  c.popularity_shape = 1.7;
  c.pair_fraction = 0.5;
  c.seed = 13;
  return build_contact_graph(generate_trace(c), -1.0, 2);
}

double median_metric(const ContactGraph& g, Time horizon) {
  std::vector<double> m = ncl_metrics(g, horizon);
  std::sort(m.begin(), m.end());
  return m[m.size() / 2];
}

TEST(CalibrateHorizon, HitsTargetMedian) {
  const ContactGraph g = sample_graph();
  for (double target : {0.2, 0.3, 0.5}) {
    const Time horizon = calibrate_horizon(g, target);
    EXPECT_NEAR(median_metric(g, horizon), target, 0.05) << "target " << target;
  }
}

TEST(CalibrateHorizon, MonotoneInTarget) {
  const ContactGraph g = sample_graph();
  const Time low = calibrate_horizon(g, 0.2);
  const Time high = calibrate_horizon(g, 0.6);
  EXPECT_LT(low, high);
}

TEST(CalibrateHorizon, ClampsToBounds) {
  const ContactGraph g = sample_graph();
  // A target so small that even the minimum horizon overshoots it.
  const Time t = calibrate_horizon(g, 1e-9, /*min_horizon=*/hours(1),
                                   /*max_horizon=*/hours(2));
  EXPECT_DOUBLE_EQ(t, hours(1));
  // A target so large that even the maximum horizon undershoots.
  const Time t2 = calibrate_horizon(g, 0.999999, hours(1), hours(2));
  EXPECT_DOUBLE_EQ(t2, hours(2));
}

TEST(CalibrateHorizon, InvalidArgumentsThrow) {
  const ContactGraph g = sample_graph();
  EXPECT_THROW(calibrate_horizon(g, 0.0), std::invalid_argument);
  EXPECT_THROW(calibrate_horizon(g, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_horizon(g, 0.3, 0.0), std::invalid_argument);
  EXPECT_THROW(calibrate_horizon(g, 0.3, 100.0, 50.0), std::invalid_argument);
}

TEST(CalibrateHorizon, Deterministic) {
  const ContactGraph g = sample_graph();
  EXPECT_DOUBLE_EQ(calibrate_horizon(g, 0.3), calibrate_horizon(g, 0.3));
}

TEST(CalibrateHorizon, MetricIsMonotoneInHorizon) {
  // The property the bisection relies on.
  const ContactGraph g = sample_graph();
  double prev = 0.0;
  for (double h : {0.5, 1.0, 4.0, 12.0, 48.0}) {
    const double m = median_metric(g, hours(h));
    EXPECT_GE(m, prev - 1e-12);
    prev = m;
  }
}

}  // namespace
}  // namespace dtn

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace dtn {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  const int resolved = resolve_threads(0);
  EXPECT_GE(resolved, 1);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
}

TEST(ResolveThreads, NegativeThrows) {
  EXPECT_THROW(resolve_threads(-1), std::invalid_argument);
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  parallel_for(8, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);

  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, EachIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(8, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.thread_count(), 8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SerialKnobRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  for (int trial = 0; trial < 10; ++trial) {
    try {
      parallel_for(8, 100, [&](std::size_t i) {
        if (i % 2 == 1) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      // All items run; the recorded error is deterministically the lowest
      // throwing index regardless of completion order.
      EXPECT_STREQ(error.what(), "boom 1");
    }
  }
}

TEST(ParallelFor, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ParallelFor, NestedUseRunsInlineWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> nested_inline{0};
  parallel_for(4, 8, [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // A nested parallel_for from inside a pool task must run inline on the
    // calling worker instead of re-entering the pool.
    parallel_for(4, 8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
      if (ThreadPool::in_worker()) ++nested_inline;
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(nested_inline.load(), 64);
}

TEST(ParallelFor, ConcurrentExternalSubmittersSerialize) {
  std::vector<std::atomic<int>> hits(400);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      parallel_for(4, 100, [&](std::size_t i) { ++hits[100 * s + i]; });
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMap, CollectsResultsInIndexOrder) {
  const auto out = parallel_map(8, 500, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, WorksWithoutDefaultConstructor) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  const auto out =
      parallel_map(8, 64, [](std::size_t i) { return NoDefault(static_cast<int>(i)); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, static_cast<int>(i));
  }
}

TEST(ParallelReduce, FoldsInIndexOrder) {
  // Non-commutative fold (string concatenation) exposes any ordering
  // violation immediately.
  std::string serial;
  for (int i = 0; i < 64; ++i) serial += std::to_string(i) + ",";
  for (int trial = 0; trial < 5; ++trial) {
    const std::string parallel = parallel_reduce(
        8, 64, std::string(),
        [](std::size_t i) { return std::to_string(i) + ","; },
        [](std::string acc, std::string part) { return acc + part; });
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ParallelReduce, FloatingPointSumMatchesSerialBitForBit) {
  // Accumulating doubles is non-associative; the index-order fold must make
  // the sum independent of thread count.
  auto item = [](std::size_t i) {
    Rng rng(derive_seed(42, i));
    return rng.uniform() * 1e-3 + rng.uniform();
  };
  auto fold = [](double acc, double v) { return acc + v; };
  const double serial = parallel_reduce(1, 2000, 0.0, item, fold);
  const double threaded = parallel_reduce(8, 2000, 0.0, item, fold);
  EXPECT_EQ(serial, threaded);
}

TEST(DeriveSeed, DistinctStreamsAndDeterministic) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));
  // Streams derived from consecutive indices produce uncorrelated draws.
  Rng a(derive_seed(7, 0)), b(derive_seed(7, 1));
  EXPECT_NE(a(), b());
}

TEST(ThreadPool, SerialPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace dtn

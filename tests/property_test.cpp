// Property-based invariant suite (tests/proptest.h harness).
//
// Randomized op sequences and inputs against the hot-loop data structures
// the SoA/arena rewrite introduced, each checked against either a simple
// model (map, vector) or the frozen legacy implementation as oracle:
//
//  * CacheBuffer vs an ordered-map model — byte accounting and the
//    used() <= capacity() invariant after every op;
//  * solve_knapsack workspace form vs the convenience form — identical
//    results, plus Eq. 7 feasibility (quantized total never exceeds the
//    byte capacity);
//  * plan_replacement workspace form vs the legacy allocating oracle under
//    identical RNG seeds — identical plans, identical RNG consumption;
//  * replacement plans are union-preserving partitions (Alg. 1 never
//    duplicates or invents data) within both nodes' capacities;
//  * SlabPool vs a map model — handle stability, value round-trip, live
//    accounting across arbitrary acquire/release interleavings;
//  * the fast simulator engine vs the reference engine on randomized
//    mini-traces and experiment configs — bit-identical metrics (the
//    randomized counterpart of tests/engine_golden_test.cpp's pinned
//    matrix);
//  * the shard partitioner (sim/shard.h) on randomized mini-traces — the
//    plan is a true partition (every node in exactly one shard, every
//    contact owned by exactly one feed or the cross-shard weave) and the
//    published epoch bound never exceeds the brute-force minimum gap
//    between consecutive cross-shard contacts;
//  * opportunistic path tables on random rate graphs — weights are
//    monotone non-increasing along every parent chain (the invariant the
//    sparse engine's frontier pruning is safe by);
//  * the sparse NCL metric with an active weight floor vs the exact
//    engine — per-node absolute error bounded by the floor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "cache/knapsack.h"
#include "cache/replacement.h"
#include "common/arena.h"
#include "common/rng.h"
#include "common/types.h"
#include "experiment/experiment.h"
#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "graph/sparse_metric.h"
#include "net/buffer.h"
#include "sim/shard.h"
#include "tests/proptest.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

using proptest::run_property;

TEST(Property, CacheBufferMatchesMapModel) {
  run_property("cache_buffer_model", 40, [](Rng& rng, int) {
    const Bytes capacity = rng.uniform_int(1, 4000);
    CacheBuffer buffer(capacity);
    std::map<DataId, Bytes> model;

    const int ops = static_cast<int>(rng.uniform_int(50, 300));
    for (int op = 0; op < ops; ++op) {
      const DataId id = rng.uniform_int(0, 24);
      const double dice = rng.uniform();
      if (dice < 0.55) {
        const Bytes size = rng.uniform_int(1, std::max<Bytes>(1, capacity / 3));
        const bool expect_ok =
            model.find(id) == model.end() && size <= buffer.free();
        ASSERT_EQ(buffer.insert(id, size), expect_ok);
        if (expect_ok) model.emplace(id, size);
      } else if (dice < 0.85) {
        ASSERT_EQ(buffer.erase(id), model.erase(id) > 0);
      } else {
        const auto it = model.find(id);
        ASSERT_EQ(buffer.contains(id), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(buffer.size_of(id), it->second);
        }
      }

      // Core invariants, re-checked after *every* op.
      Bytes used = 0;
      for (const auto& [mid, msize] : model) used += msize;
      ASSERT_EQ(buffer.used(), used);
      ASSERT_LE(buffer.used(), buffer.capacity());
      ASSERT_EQ(buffer.count(), model.size());
      ASSERT_EQ(buffer.free(), capacity - used);
    }

    std::vector<DataId> items = buffer.items();
    std::sort(items.begin(), items.end());
    std::vector<DataId> expected;
    for (const auto& [mid, msize] : model) expected.push_back(mid);
    ASSERT_EQ(items, expected);
  });
}

TEST(Property, KnapsackWorkspaceMatchesConvenienceAndFeasible) {
  run_property("knapsack_workspace", 60, [](Rng& rng, int) {
    const int n = static_cast<int>(rng.uniform_int(0, 24));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i) {
      KnapsackItem item;
      item.value = rng.uniform();
      item.size = rng.uniform_int(1, 8 << 20);
      items.push_back(item);
    }
    const Bytes unit = 1 << static_cast<int>(rng.uniform_int(16, 21));
    const Bytes capacity = rng.uniform_int(0, 24LL << 20);

    const KnapsackResult oracle = solve_knapsack(items, capacity, unit);
    KnapsackWorkspace ws;
    KnapsackResult fast;
    solve_knapsack(items, capacity, unit, ws, fast);

    ASSERT_EQ(fast.selected, oracle.selected);
    ASSERT_EQ(fast.total_value, oracle.total_value);
    ASSERT_EQ(fast.total_size, oracle.total_size);

    // Feasibility (Eq. 7): the quantized sizes are rounded up, so the
    // exact byte total can never exceed the byte capacity.
    Bytes total = 0;
    std::set<std::size_t> seen;
    for (std::size_t idx : fast.selected) {
      ASSERT_LT(idx, items.size());
      ASSERT_TRUE(seen.insert(idx).second) << "index selected twice";
      total += items[idx].size;
    }
    ASSERT_EQ(total, fast.total_size);
    ASSERT_LE(total, capacity);
  });
}

// Shared generator for the two replacement properties: a pool of distinct
// data ids with randomized sizes, popularities and holders, plus a full
// randomized exchange configuration.
struct ExchangeCase {
  std::vector<ReplacementItem> pool;
  Bytes capacity_a = 0;
  Bytes capacity_b = 0;
  double weight_a = 0.0;
  double weight_b = 0.0;
  ReplacementConfig config;
  std::uint64_t rng_seed = 0;
};

ExchangeCase make_exchange_case(Rng& rng) {
  ExchangeCase c;
  const int n = static_cast<int>(rng.uniform_int(0, 20));
  Bytes pool_bytes = 0;
  for (int i = 0; i < n; ++i) {
    ReplacementItem item;
    item.id = 100 + i;  // distinct by construction (a pool precondition)
    item.size = rng.uniform_int(1, 6 << 20);
    item.popularity = rng.uniform();
    item.at_a = rng.bernoulli(0.5);
    pool_bytes += item.size;
    c.pool.push_back(item);
  }
  rng.shuffle(c.pool);
  c.capacity_a = rng.uniform_int(0, std::max<Bytes>(1, pool_bytes));
  c.capacity_b = rng.uniform_int(0, std::max<Bytes>(1, pool_bytes));
  c.weight_a = rng.uniform();
  c.weight_b = rng.uniform();
  c.config.knapsack_unit = 1 << static_cast<int>(rng.uniform_int(17, 21));
  c.config.max_rounds = static_cast<int>(rng.uniform_int(1, 5));
  c.config.probabilistic = rng.bernoulli(0.75);
  c.rng_seed = rng();
  return c;
}

TEST(Property, ReplacementWorkspaceMatchesOracle) {
  run_property("replacement_oracle", 60, [](Rng& rng, int) {
    const ExchangeCase c = make_exchange_case(rng);

    Rng rng_oracle(c.rng_seed);
    const ReplacementPlan oracle =
        plan_replacement(c.pool, c.capacity_a, c.capacity_b, c.weight_a,
                         c.weight_b, c.config, rng_oracle);

    Rng rng_fast(c.rng_seed);
    ReplacementWorkspace ws;
    ReplacementPlan fast;
    // Run twice through the same workspace: the second exchange must be
    // unaffected by whatever scratch the first one left behind.
    plan_replacement(c.pool, c.capacity_a, c.capacity_b, c.weight_a,
                     c.weight_b, c.config, rng_fast, ws, fast);
    Rng rng_again(c.rng_seed);
    plan_replacement(c.pool, c.capacity_a, c.capacity_b, c.weight_a,
                     c.weight_b, c.config, rng_again, ws, fast);

    ASSERT_EQ(fast.keep_at_a, oracle.keep_at_a);
    ASSERT_EQ(fast.keep_at_b, oracle.keep_at_b);
    ASSERT_EQ(fast.dropped, oracle.dropped);
    ASSERT_EQ(fast.moved, oracle.moved);
    ASSERT_EQ(fast.moved_bytes, oracle.moved_bytes);

    // Identical RNG consumption, not merely identical plans: the next draw
    // from both streams must agree.
    ASSERT_EQ(rng_fast(), rng_oracle());
  });
}

TEST(Property, ReplacementPlanPartitionsPoolWithinCapacity) {
  run_property("replacement_partition", 60, [](Rng& rng, int) {
    const ExchangeCase c = make_exchange_case(rng);
    Rng plan_rng(c.rng_seed);
    ReplacementWorkspace ws;
    ReplacementPlan plan;
    plan_replacement(c.pool, c.capacity_a, c.capacity_b, c.weight_a,
                     c.weight_b, c.config, plan_rng, ws, plan);

    std::map<DataId, Bytes> sizes;
    for (const ReplacementItem& item : c.pool) sizes.emplace(item.id, item.size);

    // Union preservation (Alg. 1): every pooled id lands in exactly one of
    // keep_at_a / keep_at_b / dropped — nothing duplicated, nothing new.
    std::vector<DataId> placed;
    Bytes bytes_a = 0;
    Bytes bytes_b = 0;
    for (DataId id : plan.keep_at_a) {
      ASSERT_TRUE(sizes.count(id));
      bytes_a += sizes.at(id);
      placed.push_back(id);
    }
    for (DataId id : plan.keep_at_b) {
      ASSERT_TRUE(sizes.count(id));
      bytes_b += sizes.at(id);
      placed.push_back(id);
    }
    for (DataId id : plan.dropped) {
      ASSERT_TRUE(sizes.count(id));
      placed.push_back(id);
    }
    ASSERT_EQ(placed.size(), c.pool.size());
    std::sort(placed.begin(), placed.end());
    ASSERT_TRUE(std::adjacent_find(placed.begin(), placed.end()) ==
                placed.end())
        << "a data id was placed twice";

    // Capacity (Eq. 7 feasibility at both nodes).
    ASSERT_LE(bytes_a, c.capacity_a);
    ASSERT_LE(bytes_b, c.capacity_b);

    // moved is a subset of the keeps, and moved_bytes is its byte total.
    std::set<DataId> kept(plan.keep_at_a.begin(), plan.keep_at_a.end());
    kept.insert(plan.keep_at_b.begin(), plan.keep_at_b.end());
    Bytes moved_bytes = 0;
    for (DataId id : plan.moved) {
      ASSERT_TRUE(kept.count(id)) << "moved item was not kept";
      moved_bytes += sizes.at(id);
    }
    ASSERT_EQ(plan.moved_bytes, moved_bytes);
  });
}

TEST(Property, SlabPoolMatchesMapModel) {
  run_property("slab_pool_model", 40, [](Rng& rng, int) {
    using Pool = SlabPool<std::int64_t>;
    Pool pool(/*slab_capacity=*/4);  // small slabs: multi-slab from op ~5 on
    std::map<Pool::Handle, std::int64_t> model;
    std::int64_t next_value = 1;

    const int ops = static_cast<int>(rng.uniform_int(50, 400));
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.5 || model.empty()) {
        const Pool::Handle h = pool.acquire();
        ASSERT_TRUE(model.find(h) == model.end())
            << "acquire returned a handle that is already live";
        pool.get(h) = next_value;
        model.emplace(h, next_value);
        ++next_value;
      } else if (dice < 0.8) {
        auto it = model.begin();
        std::advance(it, rng.uniform_int(
                             0, static_cast<std::int64_t>(model.size()) - 1));
        pool.release(it->first);
        model.erase(it);
      } else {
        // Values survive unrelated acquires/releases: slab addresses and
        // slot contents are stable while a handle stays live.
        auto it = model.begin();
        std::advance(it, rng.uniform_int(
                             0, static_cast<std::int64_t>(model.size()) - 1));
        ASSERT_EQ(pool.get(it->first), it->second);
      }
      ASSERT_EQ(pool.live(), model.size());
      ASSERT_GE(pool.capacity(), pool.live());
    }
    for (const auto& [h, value] : model) ASSERT_EQ(pool.get(h), value);
  });
}

TEST(Property, FastEngineMatchesReferenceOnRandomMiniTraces) {
  // The randomized counterpart of engine_golden_test's pinned matrix:
  // small random traces and experiment configs, fast vs reference engines,
  // raw-double equality on every aggregate metric. Case count is modest
  // because each case runs two full simulations.
  run_property("engine_equivalence", 6, [](Rng& rng, int) {
    SyntheticTraceConfig tc;
    tc.node_count = static_cast<NodeId>(rng.uniform_int(12, 20));
    tc.duration = days(rng.uniform(0.5, 1.0));
    tc.target_total_contacts =
        static_cast<double>(tc.node_count) *
        static_cast<double>(rng.uniform_int(60, 150));
    tc.community_count = rng.bernoulli(0.5) ? 3 : 0;
    tc.seed = rng();
    const ContactTrace trace = generate_trace(tc);

    ExperimentConfig config;
    config.avg_lifetime = hours(rng.uniform(6.0, 24.0));
    config.avg_data_size = megabits(rng.uniform(10.0, 50.0));
    config.ncl_count = static_cast<int>(rng.uniform_int(1, 3));
    config.repetitions = 1;
    config.auto_horizon = false;
    config.sim.path_horizon = hours(2);
    config.sim.maintenance_interval = hours(rng.uniform(6.0, 48.0));
    config.dynamic_ncl = rng.bernoulli(0.3);
    const CacheStrategy strategies[] = {
        CacheStrategy::kUtilityExchange, CacheStrategy::kFifo,
        CacheStrategy::kLru, CacheStrategy::kGds};
    config.strategy = strategies[rng.uniform_int(0, 3)];
    const ResponseMode modes[] = {ResponseMode::kPathWeight,
                                  ResponseMode::kSigmoid, ResponseMode::kAlways};
    config.response_mode = modes[rng.uniform_int(0, 2)];
    config.seed = rng();

    config.sim.sim_engine = SimEngine::kFast;
    const ExperimentResult fast =
        run_experiment(trace, SchemeKind::kNclCache, config);
    config.sim.sim_engine = SimEngine::kReference;
    const ExperimentResult ref =
        run_experiment(trace, SchemeKind::kNclCache, config);

    const auto expect_stats = [](const RunningStats& f, const RunningStats& r) {
      ASSERT_EQ(f.count(), r.count());
      ASSERT_EQ(f.mean(), r.mean());
      ASSERT_EQ(f.variance(), r.variance());
      ASSERT_EQ(f.min(), r.min());
      ASSERT_EQ(f.max(), r.max());
    };
    expect_stats(fast.success_ratio, ref.success_ratio);
    expect_stats(fast.delay_hours, ref.delay_hours);
    expect_stats(fast.copies_per_item, ref.copies_per_item);
    expect_stats(fast.replacement_overhead, ref.replacement_overhead);
    expect_stats(fast.queries_issued, ref.queries_issued);
    expect_stats(fast.queries_satisfied, ref.queries_satisfied);
    expect_stats(fast.gigabytes_transferred, ref.gigabytes_transferred);
    expect_stats(fast.duplicate_deliveries, ref.duplicate_deliveries);
  });
}

TEST(Property, ShardPlanPartitionsNodesAndContacts) {
  // The bound-weave engine's correctness rests on the plan being a true
  // partition: a node on two shards would run its scheme state from two
  // threads, and a contact in two feeds (or in a feed AND the weave) would
  // be simulated twice. Randomized traces and shard counts, checked
  // against brute force.
  run_property("shard_plan_partition", 30, [](Rng& rng, int) {
    SyntheticTraceConfig tc;
    tc.node_count = static_cast<NodeId>(rng.uniform_int(6, 40));
    tc.duration = days(rng.uniform(0.25, 1.0));
    tc.target_total_contacts =
        static_cast<double>(tc.node_count) *
        static_cast<double>(rng.uniform_int(10, 80));
    tc.community_count =
        rng.bernoulli(0.5) ? static_cast<int>(rng.uniform_int(2, 5)) : 0;
    tc.seed = rng();
    const ContactTrace trace = generate_trace(tc);
    const std::vector<ContactEvent>& contacts = trace.events();

    const int shards = static_cast<int>(rng.uniform_int(1, 8));
    const ShardPlan plan = build_shard_plan(contacts, tc.node_count, shards);

    // Every node lands on exactly one shard, and that shard exists. The
    // loads must account for every placed node's contact volume.
    ASSERT_EQ(plan.shard_count, shards);
    ASSERT_EQ(plan.node_shard.size(), static_cast<std::size_t>(tc.node_count));
    for (NodeId n = 0; n < tc.node_count; ++n) {
      ASSERT_GE(plan.shard_of(n), 0);
      ASSERT_LT(plan.shard_of(n), shards);
    }

    // Every contact is owned exactly once: cross-shard contacts belong to
    // the weave and appear in no feed; intra-shard contacts appear in
    // exactly one feed — the shard both endpoints live on.
    const auto feeds = shard_contact_feeds(plan, contacts);
    ASSERT_EQ(feeds.size(), static_cast<std::size_t>(shards));
    std::vector<int> owners(contacts.size(), 0);
    for (int s = 0; s < shards; ++s) {
      std::uint32_t prev = 0;
      bool first = true;
      for (const std::uint32_t idx : feeds[static_cast<std::size_t>(s)]) {
        ASSERT_LT(idx, contacts.size());
        if (!first) {
          ASSERT_GE(idx, prev);  // feeds preserve trace order
        }
        prev = idx;
        first = false;
        ++owners[idx];
        const ContactEvent& e = contacts[idx];
        ASSERT_EQ(plan.shard_of(e.a), s);
        ASSERT_EQ(plan.shard_of(e.b), s);
      }
    }
    std::size_t intra = 0;
    std::size_t cross = 0;
    for (std::size_t i = 0; i < contacts.size(); ++i) {
      if (plan.cross(contacts[i])) {
        ASSERT_EQ(owners[i], 0);
        ++cross;
      } else {
        ASSERT_EQ(owners[i], 1);
        ++intra;
      }
    }
    ASSERT_EQ(plan.intra_contacts, intra);
    ASSERT_EQ(plan.cross_contacts, cross);
    ASSERT_EQ(intra + cross, contacts.size());

    // The published epoch bound may never promise more slack than the true
    // minimum gap between consecutive cross-shard contact starts: an
    // over-long bound would let shards advance past an unapplied
    // cross-shard interaction.
    Time min_gap = kNever;
    Time prev_start = kNever;
    for (const ContactEvent& e : contacts) {
      if (!plan.cross(e)) continue;
      if (prev_start != kNever) {
        min_gap = std::min(min_gap, e.start - prev_start);
      }
      prev_start = e.start;
    }
    if (min_gap == kNever) {
      ASSERT_EQ(plan.epoch_bound, kNever);
    } else {
      ASSERT_LE(plan.epoch_bound, min_gap);
    }
  });
}

/// Random sparse rate graph with rates spanning ~3 decades, so some path
/// weights land near any plausible pruning floor.
ContactGraph random_contact_graph(Rng& rng) {
  const NodeId n = static_cast<NodeId>(rng.uniform_int(6, 40));
  ContactGraph graph(n);
  const double edge_prob = 0.05 + 0.4 * rng.uniform();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.uniform() >= edge_prob) continue;
      graph.set_rate(
          i, j, std::exp(rng.uniform(std::log(1e-5), std::log(1e-2))));
    }
  }
  return graph;
}

TEST(Property, PathWeightsMonotoneAlongParentChains) {
  run_property("path_chain_monotone", 30, [](Rng& rng, int) {
    const ContactGraph graph = random_contact_graph(rng);
    const Time horizon = rng.uniform(600.0, 6.0 * 3600.0);
    const int max_hops = static_cast<int>(rng.uniform_int(2, 6));
    const NodeId root =
        static_cast<NodeId>(rng.uniform_int(0, graph.node_count() - 1));
    const PathTable table =
        compute_opportunistic_paths(graph, root, horizon, max_hops);
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      if (node == root || !table.reachable(node)) continue;
      // Walk the parent chain to the root: each step towards the root
      // drops one hypoexp stage, so the weight can only grow. This is
      // the invariant MetricEngine::kSparse's frontier pruning is safe
      // by — a sub-floor partial path can never recover. The 1e-9 slack
      // is the engine's own relaxation tolerance (different hypoexp
      // evaluation algorithms can disagree in the last ulps near 1).
      NodeId cur = node;
      int steps = 0;
      while (cur != root) {
        const NodeId parent = table.entry(cur).next_hop;
        ASSERT_NE(parent, kNoNode);
        ASSERT_GE(table.weight(parent) + 1e-9, table.weight(cur));
        ASSERT_EQ(table.entry(parent).hops + 1, table.entry(cur).hops);
        cur = parent;
        ASSERT_LE(++steps, max_hops);
      }
    }
  });
}

TEST(Property, SparseMetricErrorBoundedByWeightFloor) {
  run_property("sparse_floor_error", 25, [](Rng& rng, int) {
    const ContactGraph graph = random_contact_graph(rng);
    const Time horizon = rng.uniform(600.0, 6.0 * 3600.0);
    const int max_hops = static_cast<int>(rng.uniform_int(2, 6));
    const std::vector<double> exact =
        ncl_metrics(graph, horizon, max_hops, 1);

    SparseMetricConfig config;  // every node a landmark: floor-only error
    config.weight_floor = 0.05 * rng.uniform();
    const std::vector<double> approx =
        sparse_ncl_metrics(graph, horizon, max_hops, 1, config);
    ASSERT_EQ(exact.size(), approx.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      // Pruning only ever loses sub-floor weight, so the approximation
      // sits below the exact metric, within the floor.
      ASSERT_GE(exact[i] + 1e-12, approx[i]);
      ASSERT_LE(exact[i] - approx[i], config.weight_floor + 1e-12);
    }
  });
}

}  // namespace
}  // namespace dtn

#include "net/buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dtn {
namespace {

TEST(CacheBuffer, StartsEmpty) {
  CacheBuffer b(100);
  EXPECT_EQ(b.capacity(), 100);
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.free(), 100);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
}

TEST(CacheBuffer, InsertAccounting) {
  CacheBuffer b(100);
  EXPECT_TRUE(b.insert(1, 40));
  EXPECT_EQ(b.used(), 40);
  EXPECT_EQ(b.free(), 60);
  EXPECT_TRUE(b.contains(1));
  EXPECT_EQ(b.size_of(1), 40);
  EXPECT_EQ(b.count(), 1u);
}

TEST(CacheBuffer, RejectsOverflow) {
  CacheBuffer b(100);
  EXPECT_TRUE(b.insert(1, 80));
  EXPECT_FALSE(b.insert(2, 30));
  EXPECT_EQ(b.used(), 80);
  EXPECT_FALSE(b.contains(2));
}

TEST(CacheBuffer, ExactFitAllowed) {
  CacheBuffer b(100);
  EXPECT_TRUE(b.insert(1, 100));
  EXPECT_EQ(b.free(), 0);
  EXPECT_FALSE(b.fits(1));
}

TEST(CacheBuffer, DuplicateInsertRejected) {
  CacheBuffer b(100);
  EXPECT_TRUE(b.insert(1, 10));
  EXPECT_FALSE(b.insert(1, 10));
  EXPECT_EQ(b.used(), 10);
}

TEST(CacheBuffer, EraseReleasesSpace) {
  CacheBuffer b(100);
  b.insert(1, 60);
  EXPECT_TRUE(b.erase(1));
  EXPECT_EQ(b.used(), 0);
  EXPECT_FALSE(b.contains(1));
  EXPECT_FALSE(b.erase(1));
}

TEST(CacheBuffer, NonPositiveSizeThrows) {
  CacheBuffer b(100);
  EXPECT_THROW(b.insert(1, 0), std::invalid_argument);
  EXPECT_THROW(b.insert(1, -5), std::invalid_argument);
}

TEST(CacheBuffer, NegativeCapacityThrows) {
  EXPECT_THROW(CacheBuffer(-1), std::invalid_argument);
}

TEST(CacheBuffer, ZeroCapacityAcceptsNothing) {
  CacheBuffer b(0);
  EXPECT_FALSE(b.insert(1, 1));
  EXPECT_FALSE(b.fits(1));
}

TEST(CacheBuffer, ItemsListsAllStored) {
  CacheBuffer b(100);
  b.insert(3, 10);
  b.insert(7, 20);
  b.insert(9, 30);
  auto items = b.items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<DataId>{3, 7, 9}));
}

TEST(CacheBuffer, SizeOfMissingThrows) {
  CacheBuffer b(10);
  EXPECT_THROW(b.size_of(42), std::out_of_range);
}

TEST(CacheBuffer, InvariantHeldAcrossManyOperations) {
  CacheBuffer b(1000);
  Bytes expected_used = 0;
  for (DataId id = 0; id < 50; ++id) {
    const Bytes size = (id % 7 + 1) * 10;
    if (b.insert(id, size)) expected_used += size;
    EXPECT_EQ(b.used(), expected_used);
    EXPECT_LE(b.used(), b.capacity());
  }
  for (DataId id = 0; id < 50; id += 2) {
    if (b.contains(id)) {
      expected_used -= b.size_of(id);
      b.erase(id);
    }
    EXPECT_EQ(b.used(), expected_used);
  }
}

}  // namespace
}  // namespace dtn

// Focused tests for the traditional replacement strategies inside the NCL
// scheme (LRU / GDS specifics) and for protocol bookkeeping bounds.
#include <gtest/gtest.h>

#include "cache/ncl_scheme.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"

namespace dtn {
namespace {

/// Line 0 - 1 - 2 - 3, central at 3 (same scaffold as ncl_scheme_test).
class StrategyTest : public testing::Test {
 protected:
  StrategyTest() : rng_(29), services_(registry_, rng_, metrics_) {
    ContactGraph graph(4);
    graph.set_rate(0, 1, 1.0 / 600.0);
    graph.set_rate(1, 2, 1.0 / 600.0);
    graph.set_rate(2, 3, 1.0 / 600.0);
    services_.set_paths(AllPairsPaths(graph, hours(1)));
    services_.set_now(0.0);
  }

  NclSchemeConfig config(CacheStrategy strategy, Bytes buffer) {
    NclSchemeConfig c;
    c.central_nodes = {3};
    c.buffer_capacity.assign(4, buffer);
    c.response_mode = ResponseMode::kAlways;
    c.strategy = strategy;
    return c;
  }

  DataItem add_data(NodeId source, Bytes size = 100, Time expires = 1e9) {
    DataItem item;
    item.source = source;
    item.created = services_.now();
    item.expires = expires;
    item.size = size;
    return registry_.get(registry_.add(item));
  }

  Query make_query(NodeId requester, DataId data) {
    Query q;
    q.id = next_query_++;
    q.requester = requester;
    q.data = data;
    q.issued = services_.now();
    q.expires = services_.now() + 1e6;
    metrics_.on_query_issued(q);
    return q;
  }

  void contact(NclCachingScheme& scheme, NodeId a, NodeId b) {
    LinkBudget budget(1 << 30);
    scheme.on_contact(services_, a, b, budget);
  }

  /// Pushes `item` (whose source is node 2) into the central's cache.
  void push_to_central(NclCachingScheme& scheme, const DataItem& item) {
    scheme.on_data_generated(services_, item);
    contact(scheme, 2, 3);
  }

  DataRegistry registry_;
  Rng rng_;
  MetricsCollector metrics_;
  SimServices services_;
  QueryId next_query_ = 0;
};

TEST_F(StrategyTest, LruEvictsLeastRecentlyAccessed) {
  // Central buffer fits two items; access the first, push a third: the
  // *second* (least recently accessed) must be evicted.
  NclCachingScheme scheme(config(CacheStrategy::kLru, 250));
  const DataItem a = add_data(2);
  push_to_central(scheme, a);
  services_.set_now(100.0);
  const DataItem b = add_data(2);
  push_to_central(scheme, b);
  ASSERT_TRUE(scheme.node_caches(3, a.id));
  ASSERT_TRUE(scheme.node_caches(3, b.id));

  // Touch `a` via a query answered by the central.
  services_.set_now(200.0);
  const Query q = make_query(2, a.id);
  scheme.on_query(services_, q);
  contact(scheme, 2, 3);

  services_.set_now(300.0);
  const DataItem c = add_data(2);
  push_to_central(scheme, c);
  EXPECT_TRUE(scheme.node_caches(3, c.id));
  EXPECT_TRUE(scheme.node_caches(3, a.id));   // recently accessed: kept
  EXPECT_FALSE(scheme.node_caches(3, b.id));  // LRU victim
}

TEST_F(StrategyTest, GdsEvictsLowestValueDensity) {
  // GDS values entries by popularity/size: a queried small item must
  // outlive an unqueried large one.
  NclCachingScheme scheme(config(CacheStrategy::kGds, 250));
  const DataItem small = add_data(2, 50);
  push_to_central(scheme, small);
  services_.set_now(50.0);
  const DataItem large = add_data(2, 200);
  push_to_central(scheme, large);
  ASSERT_TRUE(scheme.node_caches(3, small.id));
  ASSERT_TRUE(scheme.node_caches(3, large.id));

  // Two queries for `small` raise its popularity (and its H value).
  for (int i = 0; i < 2; ++i) {
    services_.set_now(services_.now() + 100.0);
    const Query q = make_query(2, small.id);
    scheme.on_query(services_, q);
    contact(scheme, 2, 3);
  }

  services_.set_now(500.0);
  const DataItem incoming = add_data(2, 150);
  push_to_central(scheme, incoming);
  EXPECT_TRUE(scheme.node_caches(3, incoming.id));
  EXPECT_TRUE(scheme.node_caches(3, small.id));
  EXPECT_FALSE(scheme.node_caches(3, large.id));  // lowest H: evicted
}

TEST_F(StrategyTest, EvictionNeverExceedsWhatIsNeeded) {
  // FIFO with three small items and one incoming small item: exactly one
  // eviction, not a purge.
  NclCachingScheme scheme(config(CacheStrategy::kFifo, 300));
  const DataItem a = add_data(2);
  push_to_central(scheme, a);
  services_.set_now(10.0);
  const DataItem b = add_data(2);
  push_to_central(scheme, b);
  services_.set_now(20.0);
  const DataItem c = add_data(2);
  push_to_central(scheme, c);
  services_.set_now(30.0);
  const DataItem d = add_data(2);
  push_to_central(scheme, d);
  EXPECT_FALSE(scheme.node_caches(3, a.id));  // oldest out
  EXPECT_TRUE(scheme.node_caches(3, b.id));
  EXPECT_TRUE(scheme.node_caches(3, c.id));
  EXPECT_TRUE(scheme.node_caches(3, d.id));
}

TEST_F(StrategyTest, OversizedItemNeverAdmitted) {
  NclCachingScheme scheme(config(CacheStrategy::kFifo, 150));
  const DataItem a = add_data(2);
  push_to_central(scheme, a);
  services_.set_now(10.0);
  const DataItem huge = add_data(2, 500);  // larger than the whole buffer
  push_to_central(scheme, huge);
  EXPECT_FALSE(scheme.node_caches(3, huge.id));
  EXPECT_TRUE(scheme.node_caches(3, a.id));  // nothing evicted for it
}

TEST_F(StrategyTest, QueryTrackingBoundEvictsOldest) {
  NclSchemeConfig c = config(CacheStrategy::kUtilityExchange, 1000);
  c.max_tracked_queries = 8;
  NclCachingScheme scheme(c);
  const DataItem item = add_data(3);  // central is the source: cached there
  scheme.on_data_generated(services_, item);

  // Flood the central with more distinct queries than it may track; the
  // scheme must keep functioning and stay bounded (no assertion failures,
  // responses still generated for fresh queries).
  for (int i = 0; i < 50; ++i) {
    services_.set_now(services_.now() + 10.0);
    const Query q = make_query(0, item.id);
    scheme.on_query(services_, q);
    contact(scheme, 0, 1);
    contact(scheme, 1, 2);
    contact(scheme, 2, 3);
  }
  EXPECT_GT(scheme.responses_sent(), 25u);
  EXPECT_TRUE(scheme.check_invariants(registry_));
}

TEST_F(StrategyTest, PathWeightResponseWithEmptyPathsNeverResponds) {
  NclSchemeConfig c = config(CacheStrategy::kUtilityExchange, 1000);
  c.response_mode = ResponseMode::kPathWeight;
  NclCachingScheme scheme(c);
  // Replace paths with an empty table set (pre-maintenance state).
  services_.set_paths(AllPairsPaths{});
  const DataItem item = add_data(3);
  scheme.on_data_generated(services_, item);
  const Query q = make_query(0, item.id);
  scheme.on_query(services_, q);
  contact(scheme, 0, 3);  // direct contact with the caching central
  EXPECT_EQ(scheme.responses_sent(), 0u);
}

}  // namespace
}  // namespace dtn

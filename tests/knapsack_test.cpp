#include "cache/knapsack.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "cache/replacement.h"
#include "common/rng.h"

namespace dtn {
namespace {

TEST(Knapsack, EmptyItems) {
  const KnapsackResult r = solve_knapsack({}, 100);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.total_value, 0.0);
}

TEST(Knapsack, ZeroCapacity) {
  const KnapsackResult r = solve_knapsack({{1.0, 10}}, 0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, SingleItemFits) {
  const KnapsackResult r = solve_knapsack({{2.5, 10}}, 100, 1);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_value, 2.5);
  EXPECT_EQ(r.total_size, 10);
}

TEST(Knapsack, SingleItemTooBig) {
  const KnapsackResult r = solve_knapsack({{2.5, 200}}, 100, 1);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, ClassicOptimum) {
  // Items (value, size): capacity 10 -> optimal {1, 2} with value 9.
  const std::vector<KnapsackItem> items{{6.0, 6}, {5.0, 5}, {4.0, 5}};
  const KnapsackResult r = solve_knapsack(items, 10, 1);
  EXPECT_DOUBLE_EQ(r.total_value, 9.0);
  EXPECT_EQ(r.total_size, 10);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 1u);
  EXPECT_EQ(r.selected[1], 2u);
}

TEST(Knapsack, PrefersHighValueOverCount) {
  const std::vector<KnapsackItem> items{{10.0, 10}, {1.0, 1}, {1.0, 1}};
  const KnapsackResult r = solve_knapsack(items, 10, 1);
  EXPECT_DOUBLE_EQ(r.total_value, 10.0);
}

TEST(Knapsack, QuantizationRoundsSizesUp) {
  // With unit = 10, a size-11 item occupies 2 units; capacity 20 units = 2.
  const std::vector<KnapsackItem> items{{5.0, 11}, {5.0, 11}};
  const KnapsackResult r = solve_knapsack(items, 20, 10);
  // Each item costs 2 quantized units; only one fits in 2 units.
  EXPECT_EQ(r.selected.size(), 1u);
}

TEST(Knapsack, QuantizedSelectionNeverExceedsByteCapacity) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 12; ++i) {
      items.push_back({rng.uniform(0.0, 1.0), rng.uniform_int(1, 5000)});
    }
    const Bytes capacity = rng.uniform_int(1000, 20000);
    const KnapsackResult r = solve_knapsack(items, capacity, 256);
    EXPECT_LE(r.total_size, capacity);
  }
}

TEST(Knapsack, InvalidInputs) {
  EXPECT_THROW(solve_knapsack({{1.0, 0}}, 10, 1), std::invalid_argument);
  EXPECT_THROW(solve_knapsack({{-1.0, 5}}, 10, 1), std::invalid_argument);
  EXPECT_THROW(solve_knapsack({{1.0, 5}}, 10, 0), std::invalid_argument);
}

TEST(Knapsack, ZeroValueItemsMaySelect) {
  // Zero-value items don't improve the DP objective; whether they are
  // selected is unspecified, but the result must remain feasible.
  const KnapsackResult r = solve_knapsack({{0.0, 5}, {0.0, 5}}, 10, 1);
  EXPECT_LE(r.total_size, 10);
}

// Property: DP matches exhaustive search on random small instances.
class KnapsackVsBruteForce : public testing::TestWithParam<int> {};

TEST_P(KnapsackVsBruteForce, OptimalValue) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 1);
  const int n = 3 + GetParam() % 8;
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    // Sizes in whole units so quantization does not alter the instance.
    items.push_back({rng.uniform(0.0, 10.0), rng.uniform_int(1, 12) * 10});
  }
  const Bytes capacity = rng.uniform_int(2, 50) * 10;

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double value = 0.0;
    Bytes size = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        value += items[static_cast<std::size_t>(i)].value;
        size += items[static_cast<std::size_t>(i)].size;
      }
    }
    if (size <= capacity) best = std::max(best, value);
  }

  const KnapsackResult r = solve_knapsack(items, capacity, 10);
  EXPECT_NEAR(r.total_value, best, 1e-9);
  EXPECT_LE(r.total_size, capacity);
  // Reported value must equal the sum of the selected items.
  double check = 0.0;
  for (std::size_t idx : r.selected) check += items[idx].value;
  EXPECT_NEAR(check, r.total_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackVsBruteForce,
                         testing::Range(0, 30));

// --- Edge cases for the DTN_CHECK contract layer (Eq. 7 / Algorithm 1). ---
// These instances hit the boundaries where a capacity or partition bug
// would previously corrupt results silently; with the contracts compiled in
// (the default), merely running them proves the invariants hold.

TEST(KnapsackEdge, AllEqualUtilityTiesResolveToLowestIndices) {
  // Four identical items, room for two: the DP updates only on strict
  // improvement and reconstructs top-down, so the lowest indices win.
  const std::vector<KnapsackItem> items{{1.0, 10}, {1.0, 10}, {1.0, 10},
                                        {1.0, 10}};
  const KnapsackResult first = solve_knapsack(items, 20, 10);
  ASSERT_EQ(first.selected.size(), 2u);
  EXPECT_EQ(first.selected[0], 0u);
  EXPECT_EQ(first.selected[1], 1u);
  // And the tie-break is stable: every re-solve returns the same selection.
  for (int trial = 0; trial < 20; ++trial) {
    const KnapsackResult again = solve_knapsack(items, 20, 10);
    EXPECT_EQ(again.selected, first.selected);
    EXPECT_EQ(again.total_size, first.total_size);
  }
}

TEST(KnapsackEdge, ZeroCapacityPooledBufferDropsEverything) {
  // Both nodes advertise zero free capacity: the plan must drop the whole
  // pool while preserving the union (checked by the DTN_CHECK contracts).
  std::vector<ReplacementItem> pool;
  for (DataId id = 1; id <= 3; ++id) {
    ReplacementItem item;
    item.id = id;
    item.size = 10;
    item.popularity = 0.5;
    item.at_a = (id % 2) == 0;
    pool.push_back(item);
  }
  ReplacementConfig config;
  config.probabilistic = false;
  Rng rng(11);
  const ReplacementPlan plan =
      plan_replacement(pool, 0, 0, 0.9, 0.4, config, rng);
  EXPECT_TRUE(plan.keep_at_a.empty());
  EXPECT_TRUE(plan.keep_at_b.empty());
  EXPECT_EQ(plan.dropped.size(), pool.size());
}

TEST(KnapsackEdge, ItemLargerThanPooledCapacityIsDropped) {
  // One item larger than BOTH buffers combined: no selection can hold it.
  ReplacementItem item;
  item.id = 42;
  item.size = 1000;
  item.popularity = 0.99;
  item.at_a = true;
  ReplacementConfig config;
  config.probabilistic = false;
  Rng rng(13);
  const ReplacementPlan plan =
      plan_replacement({item}, 300, 400, 0.8, 0.6, config, rng);
  EXPECT_TRUE(plan.keep_at_a.empty());
  EXPECT_TRUE(plan.keep_at_b.empty());
  ASSERT_EQ(plan.dropped.size(), 1u);
  EXPECT_EQ(plan.dropped[0], 42);
}

TEST(KnapsackEdge, EqualUtilityReplacementIsDeterministic) {
  // All-equal utilities at the exchange level: with a fixed seed the
  // probabilistic Algorithm 1 selection must replay identically. (Thread
  // counts cannot perturb this: plan_replacement runs on one thread and
  // sweep-level determinism across thread pools is pinned by
  // tests/determinism_test.cpp.)
  std::vector<ReplacementItem> pool;
  for (DataId id = 0; id < 6; ++id) {
    ReplacementItem item;
    item.id = id;
    item.size = 25;
    item.popularity = 0.5;
    item.at_a = id < 3;
    pool.push_back(item);
  }
  ReplacementConfig config;
  config.probabilistic = true;
  auto run_once = [&]() {
    Rng rng(99);
    return plan_replacement(pool, 60, 60, 0.7, 0.7, config, rng);
  };
  const ReplacementPlan first = run_once();
  EXPECT_EQ(first.keep_at_a.size() + first.keep_at_b.size() +
                first.dropped.size(),
            pool.size());
  for (int trial = 0; trial < 10; ++trial) {
    const ReplacementPlan again = run_once();
    EXPECT_EQ(again.keep_at_a, first.keep_at_a);
    EXPECT_EQ(again.keep_at_b, first.keep_at_b);
    EXPECT_EQ(again.dropped, first.dropped);
    EXPECT_EQ(again.moved, first.moved);
  }
}

}  // namespace
}  // namespace dtn

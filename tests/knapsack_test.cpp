#include "cache/knapsack.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace dtn {
namespace {

TEST(Knapsack, EmptyItems) {
  const KnapsackResult r = solve_knapsack({}, 100);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_EQ(r.total_value, 0.0);
}

TEST(Knapsack, ZeroCapacity) {
  const KnapsackResult r = solve_knapsack({{1.0, 10}}, 0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, SingleItemFits) {
  const KnapsackResult r = solve_knapsack({{2.5, 10}}, 100, 1);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_value, 2.5);
  EXPECT_EQ(r.total_size, 10);
}

TEST(Knapsack, SingleItemTooBig) {
  const KnapsackResult r = solve_knapsack({{2.5, 200}}, 100, 1);
  EXPECT_TRUE(r.selected.empty());
}

TEST(Knapsack, ClassicOptimum) {
  // Items (value, size): capacity 10 -> optimal {1, 2} with value 9.
  const std::vector<KnapsackItem> items{{6.0, 6}, {5.0, 5}, {4.0, 5}};
  const KnapsackResult r = solve_knapsack(items, 10, 1);
  EXPECT_DOUBLE_EQ(r.total_value, 9.0);
  EXPECT_EQ(r.total_size, 10);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 1u);
  EXPECT_EQ(r.selected[1], 2u);
}

TEST(Knapsack, PrefersHighValueOverCount) {
  const std::vector<KnapsackItem> items{{10.0, 10}, {1.0, 1}, {1.0, 1}};
  const KnapsackResult r = solve_knapsack(items, 10, 1);
  EXPECT_DOUBLE_EQ(r.total_value, 10.0);
}

TEST(Knapsack, QuantizationRoundsSizesUp) {
  // With unit = 10, a size-11 item occupies 2 units; capacity 20 units = 2.
  const std::vector<KnapsackItem> items{{5.0, 11}, {5.0, 11}};
  const KnapsackResult r = solve_knapsack(items, 20, 10);
  // Each item costs 2 quantized units; only one fits in 2 units.
  EXPECT_EQ(r.selected.size(), 1u);
}

TEST(Knapsack, QuantizedSelectionNeverExceedsByteCapacity) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 12; ++i) {
      items.push_back({rng.uniform(0.0, 1.0), rng.uniform_int(1, 5000)});
    }
    const Bytes capacity = rng.uniform_int(1000, 20000);
    const KnapsackResult r = solve_knapsack(items, capacity, 256);
    EXPECT_LE(r.total_size, capacity);
  }
}

TEST(Knapsack, InvalidInputs) {
  EXPECT_THROW(solve_knapsack({{1.0, 0}}, 10, 1), std::invalid_argument);
  EXPECT_THROW(solve_knapsack({{-1.0, 5}}, 10, 1), std::invalid_argument);
  EXPECT_THROW(solve_knapsack({{1.0, 5}}, 10, 0), std::invalid_argument);
}

TEST(Knapsack, ZeroValueItemsMaySelect) {
  // Zero-value items don't improve the DP objective; whether they are
  // selected is unspecified, but the result must remain feasible.
  const KnapsackResult r = solve_knapsack({{0.0, 5}, {0.0, 5}}, 10, 1);
  EXPECT_LE(r.total_size, 10);
}

// Property: DP matches exhaustive search on random small instances.
class KnapsackVsBruteForce : public testing::TestWithParam<int> {};

TEST_P(KnapsackVsBruteForce, OptimalValue) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 1);
  const int n = 3 + GetParam() % 8;
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    // Sizes in whole units so quantization does not alter the instance.
    items.push_back({rng.uniform(0.0, 10.0), rng.uniform_int(1, 12) * 10});
  }
  const Bytes capacity = rng.uniform_int(2, 50) * 10;

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double value = 0.0;
    Bytes size = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        value += items[static_cast<std::size_t>(i)].value;
        size += items[static_cast<std::size_t>(i)].size;
      }
    }
    if (size <= capacity) best = std::max(best, value);
  }

  const KnapsackResult r = solve_knapsack(items, capacity, 10);
  EXPECT_NEAR(r.total_value, best, 1e-9);
  EXPECT_LE(r.total_size, capacity);
  // Reported value must equal the sum of the selected items.
  double check = 0.0;
  for (std::size_t idx : r.selected) check += items[idx].value;
  EXPECT_NEAR(check, r.total_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackVsBruteForce,
                         testing::Range(0, 30));

}  // namespace
}  // namespace dtn

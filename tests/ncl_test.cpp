#include "graph/ncl.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.h"
#include "graph/all_pairs.h"
#include "trace/synthetic.h"

namespace dtn {
namespace {

/// A star topology: node 0 is the hub.
ContactGraph star_graph(NodeId n, double rate) {
  ContactGraph g(n);
  for (NodeId i = 1; i < n; ++i) g.set_rate(0, i, rate);
  return g;
}

TEST(NclMetrics, HubHasHighestMetric) {
  const ContactGraph g = star_graph(6, 1.0);
  const std::vector<double> m = ncl_metrics(g, 1.0);
  for (NodeId i = 1; i < 6; ++i) {
    EXPECT_GT(m[0], m[static_cast<std::size_t>(i)]);
  }
}

TEST(NclMetrics, ValuesAreProbabilities) {
  const ContactGraph g = star_graph(6, 2.0);
  for (double v : ncl_metrics(g, 3.0)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NclMetrics, SingleNodeGraphIsZero) {
  ContactGraph g(1);
  const auto m = ncl_metrics(g, 1.0);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 0.0);
}

TEST(NclMetrics, DisconnectedNodeHasZeroMetric) {
  ContactGraph g(4);
  g.set_rate(0, 1, 1.0);
  g.set_rate(1, 2, 1.0);
  const auto m = ncl_metrics(g, 1.0);
  EXPECT_EQ(m[3], 0.0);
  EXPECT_GT(m[1], 0.0);
}

TEST(NclMetrics, MetricGrowsWithHorizon) {
  const ContactGraph g = star_graph(5, 0.5);
  const auto short_t = ncl_metrics(g, 0.5);
  const auto long_t = ncl_metrics(g, 5.0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(long_t[i], short_t[i]);
  }
}

TEST(SelectNcls, PicksHubFirst) {
  const ContactGraph g = star_graph(8, 1.5);
  const NclSelection sel = select_ncls(g, 1.0, 3);
  ASSERT_EQ(sel.central_nodes.size(), 3u);
  EXPECT_EQ(sel.central_nodes[0], 0);
  EXPECT_TRUE(sel.is_central(0));
  EXPECT_EQ(sel.central_index(0), 0);
}

TEST(SelectNcls, OrderedByMetricDescending) {
  ContactGraph g(5);
  g.set_rate(0, 1, 5.0);
  g.set_rate(0, 2, 5.0);
  g.set_rate(0, 3, 5.0);
  g.set_rate(1, 2, 1.0);
  const NclSelection sel = select_ncls(g, 1.0, 5);
  for (std::size_t i = 1; i < sel.central_nodes.size(); ++i) {
    const double prev =
        sel.metric[static_cast<std::size_t>(sel.central_nodes[i - 1])];
    const double curr =
        sel.metric[static_cast<std::size_t>(sel.central_nodes[i])];
    EXPECT_GE(prev, curr);
  }
}

TEST(SelectNcls, KLargerThanNIsClamped) {
  const ContactGraph g = star_graph(3, 1.0);
  const NclSelection sel = select_ncls(g, 1.0, 10);
  EXPECT_EQ(sel.central_nodes.size(), 3u);
}

TEST(SelectNcls, InvalidKThrows) {
  const ContactGraph g = star_graph(3, 1.0);
  EXPECT_THROW(select_ncls(g, 1.0, 0), std::invalid_argument);
}

TEST(SelectNcls, TiesBreakTowardsLowerIds) {
  // Symmetric square: all nodes equivalent.
  ContactGraph g(4);
  g.set_rate(0, 1, 1.0);
  g.set_rate(1, 2, 1.0);
  g.set_rate(2, 3, 1.0);
  g.set_rate(3, 0, 1.0);
  const NclSelection sel = select_ncls(g, 1.0, 2);
  EXPECT_EQ(sel.central_nodes[0], 0);
  EXPECT_EQ(sel.central_nodes[1], 1);
}

TEST(SelectNcls, NonCentralQueries) {
  const ContactGraph g = star_graph(5, 1.0);
  const NclSelection sel = select_ncls(g, 1.0, 1);
  EXPECT_FALSE(sel.is_central(4));
  EXPECT_EQ(sel.central_index(4), -1);
}

// Fig. 4 validation on synthetic traces: the NCL metric distribution must be
// highly skewed — a few nodes dominate.
TEST(NclValidation, SyntheticTraceMetricsAreSkewed) {
  const auto config = mit_reality_preset().with_duration(days(20));
  const ContactTrace trace = generate_trace(config);
  const ContactGraph graph = build_contact_graph(trace, -1.0, 2);
  // The paper picks T so metric values differentiate (Sec. IV-B): too large
  // a horizon saturates every C_i towards 1. One day separates well here.
  const std::vector<double> metrics = ncl_metrics(graph, days(1), 8);

  std::vector<double> sorted = metrics;
  std::sort(sorted.begin(), sorted.end());
  const double top = sorted.back();
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(top, 0.0);
  // Heterogeneity: the best node clearly dominates the median node.
  EXPECT_GT(top, 1.5 * median);
}

TEST(AllPairs, WeightsMatchSingleSource) {
  const ContactGraph g = star_graph(5, 1.0);
  const AllPairsPaths ap(g, 2.0);
  const PathTable t = compute_opportunistic_paths(g, 3, 2.0);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ap.weight(i, 3), t.weight(i));
  }
}

TEST(AllPairs, SelfWeightIsOne) {
  const ContactGraph g = star_graph(4, 1.0);
  const AllPairsPaths ap(g, 1.0);
  for (NodeId i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(ap.weight(i, i), 1.0);
}

TEST(AllPairs, WeightAtRescalesTimeBudget) {
  const ContactGraph g = star_graph(3, 0.5);
  const AllPairsPaths ap(g, 2.0);
  // Node 1 -> node 2 goes through the hub: rates {0.5, 0.5}.
  const double at_two = ap.weight_at(1, 2, 2.0);
  EXPECT_NEAR(at_two, ap.weight(1, 2), 1e-12);
  const double at_ten = ap.weight_at(1, 2, 10.0);
  EXPECT_GT(at_ten, at_two);
  EXPECT_EQ(ap.weight_at(1, 2, 0.0), 0.0);
}

TEST(AllPairs, UnreachablePairIsZeroAtAnyBudget) {
  ContactGraph g(3);
  g.set_rate(0, 1, 1.0);
  const AllPairsPaths ap(g, 1.0);
  EXPECT_EQ(ap.weight(0, 2), 0.0);
  EXPECT_EQ(ap.weight_at(0, 2, 100.0), 0.0);
}

TEST(AllPairs, EmptyDefault) {
  AllPairsPaths ap;
  EXPECT_TRUE(ap.empty());
  EXPECT_EQ(ap.node_count(), 0);
}

}  // namespace
}  // namespace dtn

#include "graph/contact_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/synthetic.h"

namespace dtn {
namespace {

TEST(ContactGraph, EmptyGraph) {
  ContactGraph g(5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.rate(0, 1), 0.0);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(ContactGraph, SetRateSymmetric) {
  ContactGraph g(3);
  g.set_rate(0, 2, 0.5);
  EXPECT_DOUBLE_EQ(g.rate(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.rate(2, 0), 0.5);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].node, 2);
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(2)[0].node, 0);
}

TEST(ContactGraph, OverwriteUpdatesBothDirections) {
  ContactGraph g(3);
  g.set_rate(0, 1, 0.5);
  g.set_rate(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(g.rate(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(g.rate(1, 0), 0.9);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(ContactGraph, InvalidEdgesRejected) {
  ContactGraph g(3);
  EXPECT_THROW(g.set_rate(1, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(g.set_rate(0, 3, 0.5), std::invalid_argument);
  EXPECT_THROW(g.set_rate(-1, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(g.set_rate(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.set_rate(0, 1, -2.0), std::invalid_argument);
}

TEST(ContactGraph, RateQueriesOutOfRangeReturnZero) {
  ContactGraph g(3);
  g.set_rate(0, 1, 1.0);
  EXPECT_EQ(g.rate(0, 5), 0.0);
  EXPECT_EQ(g.rate(-1, 0), 0.0);
  EXPECT_EQ(g.rate(1, 1), 0.0);
}

TEST(RateEstimator, TimeAveragedRate) {
  RateEstimator est(3);
  est.record_contact(0, 1, 10.0);
  est.record_contact(0, 1, 20.0);
  est.record_contact(1, 0, 30.0);  // symmetric pair
  EXPECT_EQ(est.contact_count(0, 1), 3u);
  EXPECT_DOUBLE_EQ(est.rate(0, 1, 100.0), 0.03);
  EXPECT_DOUBLE_EQ(est.rate(1, 0, 100.0), 0.03);
  EXPECT_EQ(est.rate(0, 2, 100.0), 0.0);
}

TEST(RateEstimator, RateAtZeroTimeIsZero) {
  RateEstimator est(2);
  est.record_contact(0, 1, 0.0);
  EXPECT_EQ(est.rate(0, 1, 0.0), 0.0);
}

TEST(RateEstimator, NegativeContactTimeThrows) {
  RateEstimator est(2);
  EXPECT_THROW(est.record_contact(0, 1, -1.0), std::invalid_argument);
}

TEST(RateEstimator, SnapshotFiltersByMinContacts) {
  RateEstimator est(3);
  est.record_contact(0, 1, 1.0);
  est.record_contact(0, 1, 2.0);
  est.record_contact(1, 2, 3.0);
  const ContactGraph g1 = est.snapshot(10.0, 1);
  EXPECT_EQ(g1.edge_count(), 2u);
  const ContactGraph g2 = est.snapshot(10.0, 2);
  EXPECT_EQ(g2.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g2.rate(0, 1), 0.2);
  EXPECT_EQ(g2.rate(1, 2), 0.0);
}

TEST(RateEstimator, SnapshotAtZeroTimeIsEmpty) {
  RateEstimator est(3);
  est.record_contact(0, 1, 0.0);
  EXPECT_EQ(est.snapshot(0.0).edge_count(), 0u);
}

TEST(DecayingRateEstimator, SteadyStateMatchesCumulative) {
  // With regular contacts and a decay long enough, the decayed estimate
  // converges to the true rate just like the cumulative one.
  const Time decay = 10000.0;
  RateEstimator decaying(2, decay);
  RateEstimator cumulative(2);
  const double true_rate = 0.01;  // one contact per 100 s
  for (int i = 1; i <= 2000; ++i) {
    decaying.record_contact(0, 1, i * 100.0);
    cumulative.record_contact(0, 1, i * 100.0);
  }
  const Time now = 2000 * 100.0;
  EXPECT_NEAR(decaying.rate(0, 1, now), true_rate, 0.15 * true_rate);
  EXPECT_NEAR(cumulative.rate(0, 1, now), true_rate, 0.01 * true_rate);
}

TEST(DecayingRateEstimator, ForgetsSilentPairs) {
  const Time decay = 1000.0;
  RateEstimator est(2, decay);
  for (int i = 1; i <= 50; ++i) est.record_contact(0, 1, i * 100.0);
  const double fresh = est.rate(0, 1, 5000.0);
  const double stale = est.rate(0, 1, 5000.0 + 10.0 * decay);
  EXPECT_GT(fresh, 0.0);
  EXPECT_LT(stale, fresh * 1e-3);
}

TEST(DecayingRateEstimator, CumulativeNeverForgets) {
  RateEstimator est(2);  // decay = 0: the paper's cumulative mode
  for (int i = 1; i <= 50; ++i) est.record_contact(0, 1, i * 100.0);
  const double fresh = est.rate(0, 1, 5000.0);
  const double later = est.rate(0, 1, 10000.0);
  // Cumulative decays only hyperbolically (count/now), not exponentially.
  EXPECT_NEAR(later, fresh / 2.0, 1e-12);
}

TEST(DecayingRateEstimator, SnapshotDropsFadedPairs) {
  const Time decay = 100.0;
  RateEstimator est(3, decay);
  est.record_contact(0, 1, 10.0);
  est.record_contact(0, 1, 20.0);
  est.record_contact(1, 2, 10.0);
  est.record_contact(1, 2, 1000.0);  // pair 1-2 stays fresh
  const ContactGraph g = est.snapshot(1000.0, 2);
  EXPECT_GT(g.rate(1, 2), 0.0);
  // Pair 0-1 faded by ~e^-9.8: still positive mathematically, but orders
  // of magnitude below the fresh pair.
  EXPECT_LT(g.rate(0, 1), g.rate(1, 2) * 1e-3);
}

TEST(DecayingRateEstimator, DecayAccessor) {
  EXPECT_EQ(RateEstimator(2).decay(), 0.0);
  EXPECT_EQ(RateEstimator(2, 500.0).decay(), 500.0);
  EXPECT_EQ(RateEstimator(2, -5.0).decay(), 0.0);  // clamped to cumulative
}

TEST(BuildContactGraph, FromTraceCountsUpToHorizon) {
  std::vector<ContactEvent> events;
  for (int i = 0; i < 10; ++i) {
    ContactEvent e;
    e.start = 100.0 * (i + 1);
    e.duration = 10.0;
    e.a = 0;
    e.b = 1;
    events.push_back(e);
  }
  const ContactTrace trace(2, events);
  const ContactGraph full = build_contact_graph(trace);
  EXPECT_GT(full.rate(0, 1), 0.0);
  // Horizon at 550: only 5 contacts counted over 550 seconds.
  const ContactGraph half = build_contact_graph(trace, 550.0);
  EXPECT_NEAR(half.rate(0, 1), 5.0 / 550.0, 1e-12);
}

TEST(BuildContactGraph, EstimatedRatesConvergeToTruth) {
  SyntheticTraceConfig c;
  c.node_count = 10;
  c.duration = days(30);
  c.target_total_contacts = 50000;
  c.seed = 3;
  const ContactTrace trace = generate_trace(c);
  const PairRates truth(c);
  const ContactGraph estimated = build_contact_graph(trace);

  // Compare the strongest pair: relative error should be small with many
  // samples.
  double best_rate = 0.0;
  NodeId bi = 0, bj = 1;
  for (NodeId i = 0; i < c.node_count; ++i) {
    for (NodeId j = i + 1; j < c.node_count; ++j) {
      if (truth.rate(i, j) > best_rate) {
        best_rate = truth.rate(i, j);
        bi = i;
        bj = j;
      }
    }
  }
  const double est = estimated.rate(bi, bj);
  EXPECT_NEAR(est / best_rate, 1.0, 0.15);
}

}  // namespace
}  // namespace dtn

#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "common/stats.h"

namespace dtn {
namespace {

SyntheticTraceConfig small_config() {
  SyntheticTraceConfig c;
  c.name = "small";
  c.node_count = 20;
  c.duration = days(2);
  c.target_total_contacts = 5000;
  c.granularity = 60.0;
  c.mean_contact_duration = 120.0;
  c.seed = 99;
  return c;
}

TEST(Synthetic, DeterministicForSameSeed) {
  const ContactTrace a = generate_trace(small_config());
  const ContactTrace b = generate_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(Synthetic, DifferentSeedsProduceDifferentTraces) {
  const ContactTrace a = generate_trace(small_config());
  const ContactTrace b = generate_trace(small_config().with_seed(1234));
  EXPECT_NE(a.size(), b.size());
}

TEST(Synthetic, ContactCountNearTarget) {
  const ContactTrace t = generate_trace(small_config());
  // Poisson total: expect within ~5 sigma of 5000.
  EXPECT_NEAR(static_cast<double>(t.size()), 5000.0, 5.0 * std::sqrt(5000.0));
}

TEST(Synthetic, EventsWithinDuration) {
  const SyntheticTraceConfig c = small_config();
  const ContactTrace t = generate_trace(c);
  for (const auto& e : t.events()) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_LT(e.start, c.duration);
    EXPECT_GE(e.duration, c.granularity);
  }
}

TEST(Synthetic, NodeIdsInRange) {
  const SyntheticTraceConfig c = small_config();
  const ContactTrace t = generate_trace(c);
  for (const auto& e : t.events()) {
    EXPECT_GE(e.a, 0);
    EXPECT_LT(e.b, c.node_count);
    EXPECT_LT(e.a, e.b);
  }
}

TEST(Synthetic, WithDurationPreservesRates) {
  const SyntheticTraceConfig full = small_config();
  const SyntheticTraceConfig half = full.with_duration(full.duration / 2.0);
  EXPECT_DOUBLE_EQ(half.target_total_contacts, full.target_total_contacts / 2.0);
  // Same node weights => same relative structure.
  const PairRates r_full(full);
  const PairRates r_half(half);
  EXPECT_NEAR(r_full.rate(0, 1), r_half.rate(0, 1), 1e-12);
}

TEST(Synthetic, PopularityWeightsSkewed) {
  SyntheticTraceConfig c = small_config();
  c.node_count = 200;
  c.popularity_shape = 1.5;
  const std::vector<double> w = popularity_weights(c);
  EXPECT_EQ(w.size(), 200u);
  for (double x : w) EXPECT_GE(x, 1.0);
  EXPECT_GT(gini(w), 0.15);  // a Pareto(1.5) sample is visibly unequal
}

TEST(Synthetic, PairRatesSymmetric) {
  const PairRates rates(small_config());
  EXPECT_DOUBLE_EQ(rates.rate(3, 7), rates.rate(7, 3));
}

TEST(Synthetic, PairRatesSumMatchesTarget) {
  const SyntheticTraceConfig c = small_config();
  const PairRates rates(c);
  double total = 0.0;
  for (NodeId i = 0; i < c.node_count; ++i) {
    for (NodeId j = i + 1; j < c.node_count; ++j) total += rates.rate(i, j);
  }
  EXPECT_NEAR(total * c.duration, c.target_total_contacts, 1e-6);
}

TEST(Synthetic, CommunityBoostRaisesIntraRates) {
  SyntheticTraceConfig c = small_config();
  c.community_count = 2;
  c.intra_community_boost = 10.0;
  const PairRates rates(c);
  // Nodes 0 and 2 share community 0; nodes 0 and 1 do not.
  const std::vector<double> w = popularity_weights(c);
  const double intra = rates.rate(0, 2) / (w[0] * w[2]);
  const double inter = rates.rate(0, 1) / (w[0] * w[1]);
  EXPECT_NEAR(intra / inter, 10.0, 1e-9);
}

TEST(Synthetic, RejectsBadConfigs) {
  SyntheticTraceConfig c = small_config();
  c.node_count = 1;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  c = small_config();
  c.duration = 0.0;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  c = small_config();
  c.target_total_contacts = -1;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  c = small_config();
  c.popularity_shape = 0.0;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  c = small_config();
  c.intra_community_boost = 0.5;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  EXPECT_THROW(small_config().with_duration(-1.0), std::invalid_argument);
}

TEST(Synthetic, DiurnalCyclePreservesTotals) {
  SyntheticTraceConfig c = small_config();
  c.target_total_contacts = 20000;
  c.duration = days(10);
  SyntheticTraceConfig cyclic = c;
  cyclic.diurnal_amplitude = 0.8;
  const double flat = static_cast<double>(generate_trace(c).size());
  const double modulated = static_cast<double>(generate_trace(cyclic).size());
  // Thinning keeps the expectation; allow 6 sigma of Poisson noise.
  EXPECT_NEAR(modulated, flat, 6.0 * std::sqrt(flat));
}

TEST(Synthetic, DiurnalCycleConcentratesContactsAtPeak) {
  SyntheticTraceConfig c = small_config();
  c.duration = days(10);
  c.target_total_contacts = 20000;
  c.diurnal_amplitude = 0.9;
  c.diurnal_phase = 0.0;  // peak at 6h, trough at 18h (sin maximum/minimum)
  const ContactTrace trace = generate_trace(c);
  std::size_t first_half = 0, second_half = 0;
  for (const auto& e : trace.events()) {
    const double tod = std::fmod(e.start, 86400.0);
    (tod < 43200.0 ? first_half : second_half) += 1;
  }
  // sin is positive over [0, 12h): that half of the day must dominate.
  EXPECT_GT(static_cast<double>(first_half),
            1.5 * static_cast<double>(second_half));
}

TEST(Synthetic, ZeroAmplitudeIsExactLegacyOutput) {
  SyntheticTraceConfig c = small_config();
  SyntheticTraceConfig zero = c;
  zero.diurnal_amplitude = 0.0;
  const ContactTrace a = generate_trace(c);
  const ContactTrace b = generate_trace(zero);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(Synthetic, DiurnalValidation) {
  SyntheticTraceConfig c = small_config();
  c.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
  c.diurnal_amplitude = -0.1;
  EXPECT_THROW(generate_trace(c), std::invalid_argument);
}

TEST(Synthetic, PresetsMatchTableOne) {
  const auto presets = all_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "Infocom05");
  EXPECT_EQ(presets[0].node_count, 41);
  EXPECT_NEAR(presets[0].duration, days(3), 1.0);
  EXPECT_EQ(presets[1].name, "Infocom06");
  EXPECT_EQ(presets[1].node_count, 78);
  EXPECT_EQ(presets[2].name, "MITReality");
  EXPECT_EQ(presets[2].node_count, 97);
  EXPECT_NEAR(presets[2].duration, days(246), 1.0);
  EXPECT_EQ(presets[3].name, "UCSD");
  EXPECT_EQ(presets[3].node_count, 275);
}

TEST(Synthetic, ScaledPresetGeneratesQuickly) {
  // A 10-day slice of MIT Reality keeps rates but shrinks volume.
  const auto c = mit_reality_preset().with_duration(days(10));
  const ContactTrace t = generate_trace(c);
  EXPECT_GT(t.size(), 1000u);
  EXPECT_LT(t.size(), 20000u);
  EXPECT_EQ(t.node_count(), 97);
}

TEST(Synthetic, AllNodesParticipateInLargePreset) {
  const auto c = infocom06_preset();
  const ContactTrace t = generate_trace(c);
  std::set<NodeId> seen;
  for (const auto& e : t.events()) {
    seen.insert(e.a);
    seen.insert(e.b);
  }
  // A dense conference trace should involve every device.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(c.node_count));
}

}  // namespace
}  // namespace dtn

// Trace explorer: inspect a contact trace — its Table-I-style summary, the
// calibrated opportunistic-path horizon, the NCL metric distribution and
// the selected central nodes.
//
// Usage:
//   trace_explorer                     # explore the MITReality preset
//   trace_explorer infocom05|infocom06|mitreality|ucsd|rwp [days]
//   trace_explorer path/to/trace.csv  [days]
//
// Trace files can be CSV ("start,duration,a,b"), ONE connectivity reports,
// iMote contact logs or compact .dtntrace binaries — the format is sniffed
// from the content (see traceio/). "rwp" simulates random-waypoint
// mobility with home-point attraction and extracts contacts geometrically.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "graph/analysis.h"
#include "graph/ncl.h"
#include "trace/mobility.h"
#include "trace/synthetic.h"
#include "traceio/cache.h"

using namespace dtn;

namespace {

ContactTrace load(const std::string& spec, double limit_days) {
  auto by_preset = [&](SyntheticTraceConfig config) {
    if (limit_days > 0) config = config.with_duration(days(limit_days));
    return generate_trace(config);
  };
  if (spec == "infocom05") return by_preset(infocom05_preset());
  if (spec == "infocom06") return by_preset(infocom06_preset());
  if (spec == "mitreality") return by_preset(mit_reality_preset());
  if (spec == "ucsd") return by_preset(ucsd_preset());
  if (spec == "rwp") {
    MobilityConfig config;
    config.node_count = 40;
    config.duration = days(limit_days > 0 ? limit_days : 2.0);
    config.home_attachment = 0.7;
    return generate_mobility_trace(config, "rwp");
  }
  ContactTrace trace = traceio::load_trace_any(spec);
  if (limit_days > 0) {
    trace = trace.slice(trace.start_time(),
                        trace.start_time() + days(limit_days));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "mitreality";
  const double limit_days =
      argc > 2 ? std::atof(argv[2]) : (spec == "mitreality" ? 60.0 : 0.0);

  ContactTrace trace;
  try {
    trace = load(spec, limit_days);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot load '%s': %s\n", spec.c_str(), error.what());
    return 1;
  }

  const TraceSummary summary = summarize(trace);
  std::printf("=== %s ===\n", summary.name.c_str());
  std::printf("devices:            %d\n", summary.devices);
  std::printf("contacts:           %zu\n", summary.internal_contacts);
  std::printf("duration:           %.1f days\n", summary.duration_days);
  std::printf("pairwise frequency: %.3f contacts/pair/day (met pairs)\n",
              summary.pairwise_contact_frequency_per_day);
  std::printf("pair coverage:      %.1f%% of pairs ever met\n\n",
              100.0 * summary.pair_coverage);

  const ContactGraph graph = build_contact_graph(trace, -1.0, 2);
  const DegreeStats deg = degree_stats(graph);
  const Components comps = connected_components(graph);
  std::printf("contact graph:      %zu edges with >= 2 contacts\n",
              graph.edge_count());
  std::printf("degree:             mean %.1f, max %.0f, gini %.3f\n", deg.mean,
              deg.max, deg.gini);
  std::printf("clustering:         %.3f (mean local coefficient)\n",
              average_clustering(graph));
  std::printf("components:         %d (largest spans %zu of %d nodes)\n\n",
              comps.count, comps.largest(), graph.node_count());

  const Time horizon = calibrate_horizon(graph, 0.3);
  std::printf("calibrated path horizon T: %s (median metric 0.3)\n\n",
              format_duration(horizon).c_str());

  std::vector<double> metrics = ncl_metrics(graph, horizon);
  std::vector<double> sorted = metrics;
  std::sort(sorted.begin(), sorted.end());
  std::printf("NCL metric distribution (gini %.3f):\n", gini(metrics));
  Histogram hist(0.0, std::max(1e-9, sorted.back()), 10);
  for (double m : metrics) hist.add(m);
  std::printf("%s\n", hist.to_string(30).c_str());

  const NclSelection selection = select_ncls(graph, horizon, 8);
  TextTable table({"rank", "node", "metric"});
  for (std::size_t i = 0; i < selection.central_nodes.size(); ++i) {
    const NodeId node = selection.central_nodes[i];
    table.begin_row();
    table.add_integer(static_cast<long long>(i + 1));
    table.add_integer(node);
    table.add_number(selection.metric[static_cast<std::size_t>(node)], 4);
  }
  std::printf("top central node candidates:\n%s", table.to_string().c_str());
  return 0;
}

// Live traffic information in a vehicular ad-hoc network (the paper's
// second motivating application): vehicles generate reports about road
// segments ("accident on I-99 northbound"); nearby vehicles query for the
// segments ahead of them. Reports are small, expire quickly, and demand
// low access delay.
//
// The contact pattern is a custom synthetic config: taxis and buses that
// criss-cross the city act as hubs (heavy-tailed popularity), most vehicle
// pairs never meet, and contacts are short (drive-by DSRC bursts).
#include <cstdio>

#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main() {
  std::printf("=== VANET live traffic information ===\n\n");

  SyntheticTraceConfig trace_config;
  trace_config.name = "vanet";
  trace_config.node_count = 120;          // vehicles in a district
  trace_config.duration = days(2);
  trace_config.target_total_contacts = 40000;
  trace_config.popularity_shape = 1.3;    // buses/taxis meet far more peers
  trace_config.pair_fraction = 0.2;       // most pairs never share a road
  trace_config.mean_contact_duration = 30.0;  // drive-by contact
  trace_config.granularity = 10.0;
  trace_config.seed = 77;
  const ContactTrace trace = generate_trace(trace_config);
  const TraceSummary s = summarize(trace);
  std::printf("vehicles: %d, drive-by contacts: %zu over %.1f days\n\n",
              s.devices, s.internal_contacts, s.duration_days);

  ExperimentConfig config;
  config.avg_lifetime = minutes(45);      // traffic reports go stale fast
  config.avg_data_size = megabits(2);     // a report with a short video clip
  config.buffer_min = megabits(50);       // on-board unit storage
  config.buffer_max = megabits(100);
  config.ncl_count = 6;                   // well-travelled vehicles
  config.repetitions = 3;
  config.sim.maintenance_interval = minutes(30);
  config.sim.bandwidth_per_second = megabits(6);  // DSRC-class link

  TextTable table({"scheme", "success ratio", "delay (min)", "copies/item"});
  for (SchemeKind kind :
       {SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache}) {
    const ExperimentResult r = run_experiment(trace, kind, config);
    table.begin_row();
    table.add_cell(r.scheme);
    table.add_number(r.success_ratio.mean(), 3);
    table.add_number(r.delay_hours.mean() * 60.0, 1);
    table.add_number(r.copies_per_item.mean(), 2);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reports cached at the most-travelled vehicles reach drivers while\n"
      "the information is still actionable; waiting for the original\n"
      "reporter to drive by rarely beats the report's expiry.\n");
  return 0;
}

// Quickstart: the smallest end-to-end use of the dtncache library.
//
//  1. Generate (or load) a contact trace.
//  2. Estimate the contact graph from the warm-up period and select NCLs.
//  3. Run the NCL caching scheme over a generated workload.
//  4. Read the metrics.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main() {
  // --- 1. A small synthetic DTN: 30 devices, 30 days, sparse contacts. ---
  SyntheticTraceConfig trace_config;
  trace_config.name = "quickstart";
  trace_config.node_count = 30;
  trace_config.duration = days(30);
  trace_config.target_total_contacts = 4000;
  trace_config.popularity_shape = 1.6;  // a few sociable hub devices
  trace_config.seed = 42;
  const ContactTrace trace = generate_trace(trace_config);

  const TraceSummary summary = summarize(trace);
  std::printf("trace: %d devices, %zu contacts over %.0f days\n",
              summary.devices, summary.internal_contacts, summary.duration_days);

  // --- 2 + 3. The experiment harness does the warm-up split, the NCL
  // selection and the simulation in one call. ---
  ExperimentConfig config;
  config.avg_lifetime = days(4);         // T_L
  config.avg_data_size = megabits(100);  // s_avg
  config.ncl_count = 4;                  // K
  config.repetitions = 3;
  config.sim.maintenance_interval = hours(12);

  // Peek at the NCL selection itself.
  const NclSelection ncls = warmup_ncl_selection(trace, config);
  std::printf("central nodes:");
  for (NodeId c : ncls.central_nodes) {
    std::printf(" %d (metric %.3f)", c,
                ncls.metric[static_cast<std::size_t>(c)]);
  }
  std::printf("\n\n");

  // --- 4. Compare the NCL scheme against NoCache on identical workloads. ---
  for (SchemeKind kind : {SchemeKind::kNclCache, SchemeKind::kNoCache}) {
    const ExperimentResult r = run_experiment(trace, kind, config);
    std::printf(
        "%-10s success ratio %.1f%%   mean delay %.1f h   copies/item %.2f\n",
        r.scheme.c_str(), 100.0 * r.success_ratio.mean(),
        r.delay_hours.mean(), r.copies_per_item.mean());
  }
  std::printf(
      "\nIntentional caching at the network's central locations answers\n"
      "queries that plain source-based access cannot reach in time.\n");
  return 0;
}

// Content sharing among smartphones at a conference (the paper's first
// motivating application): attendees generate digital content — talk
// slides, photos, podcasts — and peers discover and fetch it entirely over
// opportunistic Bluetooth contacts, with no infrastructure.
//
// Scenario: an Infocom06-like contact pattern; popular content (Zipf s=1.5,
// stronger skew than the default: hot talks dominate), short lifetimes
// (content is stale after a few hours). Compares all five schemes.
#include <cstdio>

#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main() {
  std::printf("=== Conference content sharing over Bluetooth ===\n\n");

  // Two conference days; contacts mirror Infocom06 density.
  const ContactTrace trace =
      generate_trace(infocom06_preset().with_duration(days(2)));
  const TraceSummary s = summarize(trace);
  std::printf("attendees: %d, contacts: %zu over %.1f days\n\n", s.devices,
              s.internal_contacts, s.duration_days);

  ExperimentConfig config;
  config.avg_lifetime = hours(3);        // slides go stale quickly
  config.avg_data_size = megabits(50);   // a slide deck / short clip
  config.zipf_exponent = 1.5;            // keynote content is hot
  config.ncl_count = 5;                  // the paper's best K for Infocom06
  config.repetitions = 3;
  config.sim.maintenance_interval = hours(1);

  TextTable table({"scheme", "success ratio", "delay (min)", "copies/item"});
  for (SchemeKind kind :
       {SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache,
        SchemeKind::kCacheData, SchemeKind::kBundleCache}) {
    const ExperimentResult r = run_experiment(trace, kind, config);
    table.begin_row();
    table.add_cell(r.scheme);
    table.add_number(r.success_ratio.mean(), 3);
    table.add_number(r.delay_hours.mean() * 60.0, 1);
    table.add_number(r.copies_per_item.mean(), 2);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The five most sociable attendees act as rendezvous points: content\n"
      "is pushed to them as it appears, and anyone can fetch it from the\n"
      "nearest one within a coffee break.\n");
  return 0;
}
